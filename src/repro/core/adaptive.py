"""Health-driven adaptive thresholds: the first real AdaptationPolicy.

Closes the loop the telemetry layer opened: the controller consumes its
*own* health-event stream -- evaluated in-loop over the detector's
windows with the same rule engine the telemetry scraper uses
(:mod:`repro.telemetry.health`) -- and tunes the live
:class:`~repro.core.detector.OverloadDetector` thresholds between
windows:

* while ``detector-flapping`` fires, the detection window widens (a
  noisy trigger wants more evidence before acting);
* after sustained ``p99-ceiling`` violations, the tail-latency trigger
  tightens (``slo_slack`` steps toward 1.0, reacting earlier);
* after a long healthy streak, both recover one step toward the
  configured baselines.

Every change is recorded as a :class:`~repro.core.decision_log.
DecisionKind.ADAPT` event with the old and new values, so adaptive runs
stay fully auditable and -- because the inputs are the deterministic
detector windows -- byte-identical per seed.

Off by default: build :class:`~repro.core.config.AtroposConfig` with
``adaptive_thresholds=True`` (or pass ``--adaptive`` / use ``repro
ablate-adaptive`` on the CLI) to enable it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

from .decision_log import DecisionKind, DecisionLog
from .pipeline import AdaptationPolicy, SignalSource

if TYPE_CHECKING:  # pragma: no cover
    from ..telemetry.health import HealthMonitor
    from .config import AtroposConfig
    from .detector import OverloadDetector


class HealthSignalSource(SignalSource):
    """Evaluates health rules against the detector's window signals.

    Must be placed *after* the detector source in the pipeline: it maps
    the detector keys the previous source produced
    (``potential_overload``, ``detector_tail_latency``,
    ``detector_samples``) onto the value map the
    :class:`~repro.telemetry.health.HealthMonitor` rules expect, and
    publishes the fired events as the ``health_events`` signal.
    """

    name = "health"

    def __init__(self, monitor: "HealthMonitor") -> None:
        self.monitor = monitor

    def sample(self, now: float, signals: Dict[str, Any]) -> None:
        values = {
            "detector_overloaded": (
                1.0 if signals.get("potential_overload") else 0.0
            ),
            "p99": signals.get("detector_tail_latency", float("nan")),
            "completed_window": float(signals.get("detector_samples", 0)),
        }
        signals["health_events"] = self.monitor.evaluate(now, values)

    def telemetry_snapshot(self) -> Dict[str, Any]:
        return {"health_events": len(self.monitor.events)}


class HistoryScheduleSource(SignalSource):
    """Publishes history-mined threshold targets when their time comes.

    The schedule (:attr:`repro.core.config.AtroposConfig.
    history_schedule`, typically derived by
    :func:`repro.regress.schedule.derive_schedule` from a regress
    baseline's per-window history) is sorted once; each tick the due
    entries are published as the ``history_targets`` signal and the
    :class:`AdaptiveThresholdPolicy` applies them as audited
    ``DecisionKind.ADAPT`` moves.  Purely time-driven, so scheduled
    runs stay byte-identical per seed.
    """

    name = "history-schedule"

    def __init__(self, schedule) -> None:
        self._entries = sorted(
            (dict(entry) for entry in schedule),
            key=lambda entry: (entry["time"], entry["param"]),
        )
        self._cursor = 0

    def sample(self, now: float, signals: Dict[str, Any]) -> None:
        due: List[Dict[str, Any]] = []
        while (
            self._cursor < len(self._entries)
            and self._entries[self._cursor]["time"] <= now
        ):
            due.append(self._entries[self._cursor])
            self._cursor += 1
        if due:
            signals["history_targets"] = due

    def telemetry_snapshot(self) -> Dict[str, Any]:
        return {
            "schedule_entries": len(self._entries),
            "schedule_published": self._cursor,
        }


class AdaptiveThresholdPolicy(AdaptationPolicy):
    """Widen on flapping, tighten on sustained p99, relax on recovery."""

    name = "health-adaptive"

    def __init__(
        self,
        detector: "OverloadDetector",
        config: "AtroposConfig",
        decision_log: DecisionLog,
    ) -> None:
        self.detector = detector
        self.config = config
        self.decision_log = decision_log
        #: Count of threshold moves (surfaced in campaign extras).
        self.adaptations = 0
        #: JSON-able change records (time, param, old, new, reason).
        self.adapt_events: List[Dict[str, Any]] = []
        self._p99_streak = 0
        self._healthy_streak = 0

    def adapt(self, now: float, signals: Dict[str, Any]) -> None:
        cfg = self.config
        # History-mined targets first: a schedule encodes *known* phase
        # boundaries, so it outranks this window's reactive evidence
        # (which may immediately refine the scheduled value).
        for target in signals.get("history_targets", ()):
            self._move(
                now,
                target["param"],
                float(target["value"]),
                "history-schedule",
            )
        events = signals.get("health_events", ())
        flapping = any(e.kind == "detector-flapping" for e in events)
        ceiling = any(e.kind == "p99-ceiling" for e in events)
        self._p99_streak = self._p99_streak + 1 if ceiling else 0
        if flapping or ceiling:
            self._healthy_streak = 0
        else:
            self._healthy_streak += 1
        live = self.detector.live
        if flapping:
            widened = min(
                cfg.detection_window * cfg.adapt_max_window_multiple,
                live.detection_window * cfg.adapt_window_widen_factor,
            )
            self._move(now, "detection_window", widened, "detector-flapping")
        if self._p99_streak >= cfg.adapt_p99_sustain:
            tightened = max(
                cfg.adapt_min_slack,
                live.slo_slack - cfg.adapt_slack_tighten_step,
            )
            self._move(now, "slo_slack", tightened, "sustained-p99-ceiling")
        if self._healthy_streak >= cfg.adapt_recovery_windows:
            # One recovery step per healthy streak, then re-arm: the
            # thresholds walk back stepwise, not in one jump.
            self._healthy_streak = 0
            if live.detection_window > cfg.detection_window:
                self._move(
                    now,
                    "detection_window",
                    max(
                        cfg.detection_window,
                        live.detection_window / cfg.adapt_window_widen_factor,
                    ),
                    "recovery",
                )
            if live.slo_slack < cfg.slo_slack:
                self._move(
                    now,
                    "slo_slack",
                    min(
                        cfg.slo_slack,
                        live.slo_slack + cfg.adapt_slack_tighten_step,
                    ),
                    "recovery",
                )

    def _move(
        self, now: float, param: str, value: float, reason: str
    ) -> None:
        """Apply one threshold move; records ADAPT only on real changes."""
        old = getattr(self.detector.live, param)
        if value == old:
            return
        if param == "detection_window":
            self.detector.set_detection_window(value)
        else:
            self.detector.set_slo_slack(value)
        self.adaptations += 1
        self.adapt_events.append(
            {
                "time": round(now, 9),
                "param": param,
                "old": round(old, 9),
                "new": round(value, 9),
                "reason": reason,
            }
        )
        self.decision_log.record(
            now,
            DecisionKind.ADAPT,
            f"{param}: {old:.4g} -> {value:.4g}",
            param=param,
            old=round(old, 6),
            new=round(value, 6),
            reason=reason,
        )
