"""Overload detection (paper §3.3).

The detector follows the Breakwater-style signal: it periodically inspects
recent end-to-end completions; when tail latency exceeds the SLO while
throughput stays flat, it flags *potential* overload.  The estimator then
decides whether a specific application resource is the bottleneck
(resource overload -> cancellation) or not (regular overload -> delegate).

Fault injection: :attr:`OverloadDetector.fault_tap` (default ``None``)
is a callable ``(now, tail_latency) -> tail_latency`` installed by
:mod:`repro.faults` to corrupt the tail-latency signal -- noise, lag,
bias -- before the overload condition is evaluated.  The recorded
:class:`DetectionSample` history carries the *corrupted* value, exactly
as a production detector would log what it believed it saw.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Optional, Tuple

from .config import AtroposConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord

from ..sim.metrics import SlidingWindow


@dataclass
class DetectionSample:
    """One detector observation."""

    time: float
    throughput: float
    tail_latency: float
    samples: int
    overloaded: bool


@dataclass
class LiveThresholds:
    """Detector thresholds an :class:`~repro.core.pipeline.
    AdaptationPolicy` may move at runtime.

    Initialized from the static :class:`AtroposConfig` values; under
    fixed thresholds (the default) they never change, so the detector
    behaves exactly as it did before thresholds became live.
    """

    slo_slack: float
    detection_window: float


class OverloadDetector:
    """Latency-over-SLO + flat-throughput detector.

    Fault-injection hook: :attr:`fault_tap`, a callable
    ``(now, tail_latency) -> tail_latency`` applied to the measured tail
    before the overload condition is evaluated (``None`` = clean signal).
    """

    def __init__(self, env: "Environment", config: AtroposConfig) -> None:
        self.env = env
        self.config = config
        #: Live (adaptable) thresholds; equal to the config until an
        #: adaptation policy moves them.
        self.live = LiveThresholds(
            slo_slack=config.slo_slack,
            detection_window=config.detection_window,
        )
        self.window = SlidingWindow(horizon=config.detection_window)
        #: Signal-corruption tap installed by :mod:`repro.faults`.
        self.fault_tap = None
        #: (time, throughput) samples for growth comparison over the full
        #: detection window -- adjacent-period comparison is too noisy and
        #: reads a flushing backlog as "growing" traffic.
        self._throughput_history: Deque[Tuple[float, float]] = deque()
        self.history: list[DetectionSample] = []

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def observe_completion(self, record: "RequestRecord") -> None:
        if record.completed:
            self.window.observe(record.finish_time, record.latency)

    def telemetry_snapshot(self) -> dict:
        """Latest detector observation for the telemetry scraper."""
        if not self.history:
            return {
                "overloaded": 0.0,
                "tail_latency": float("nan"),
                "throughput": 0.0,
                "samples": 0,
            }
        last = self.history[-1]
        return {
            "overloaded": 1.0 if last.overloaded else 0.0,
            "tail_latency": last.tail_latency,
            "throughput": last.throughput,
            "samples": last.samples,
        }

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def latency_limit(self) -> float:
        return self.config.slo_latency * self.live.slo_slack

    def set_detection_window(self, seconds: float) -> None:
        """Move the live detection window (adaptation hook).

        Also resizes the completion window's horizon; shrinking evicts
        immediately, widening simply lets the window fill further.
        """
        self.live.detection_window = seconds
        self.window.horizon = seconds

    def set_slo_slack(self, slack: float) -> None:
        """Move the live tail-latency trigger (adaptation hook)."""
        self.live.slo_slack = slack

    def _reference_throughput(self, now: float) -> Optional[float]:
        """Throughput observed roughly a detection window ago."""
        if not self._throughput_history:
            return None
        return self._throughput_history[0][1]

    def check(self, oldest_inflight_age: float = 0.0) -> bool:
        """Evaluate the overload condition now; records a sample.

        Args:
            oldest_inflight_age: age of the oldest still-executing request.
                This head-of-line signal makes a *complete stall* visible:
                when victims never finish, the completion window only holds
                fast unaffected requests and tail latency alone looks
                healthy.
        """
        now = self.env.now
        cfg = self.config
        throughput = self.window.throughput(now)
        samples = self.window.count(now)
        tail = self.window.latency_percentile(now, cfg.latency_percentile)
        if self.fault_tap is not None:
            tail = self.fault_tap(now, tail)

        tail_violated = (
            samples >= cfg.min_window_samples
            and not math.isnan(tail)
            and tail > self.latency_limit()
        )
        hol_violated = oldest_inflight_age > self.latency_limit()
        overloaded = False
        if tail_violated or hol_violated:
            reference = self._reference_throughput(now)
            if reference is None or reference <= 0:
                # No growth baseline: a latency violation alone counts.
                throughput_flat = True
            else:
                growth = (throughput - reference) / reference
                throughput_flat = growth < cfg.flat_throughput_margin
            overloaded = throughput_flat
        self._throughput_history.append((now, throughput))
        cutoff = now - self.live.detection_window
        while (
            len(self._throughput_history) > 1
            and self._throughput_history[0][0] < cutoff
        ):
            self._throughput_history.popleft()
        self.history.append(
            DetectionSample(
                time=now,
                throughput=throughput,
                tail_latency=tail,
                samples=samples,
                overloaded=overloaded,
            )
        )
        return overloaded
