"""The ATROPOS overload controller (paper §3, Figure 5).

Wires together the runtime manager (per-task usage tracking), overload
detector, estimator, policy engine, and cancellation manager behind the
shared :class:`~repro.core.controller.BaseController` interface that
applications are instrumented against.

The periodic control loop itself is a
:class:`~repro.core.pipeline.ControlPipeline`: a
:class:`DetectorSignalSource` produces the window's detector signals
(plus, in adaptive mode, a health source consuming them), an
:class:`~repro.core.pipeline.AdaptationPolicy` may move the live
detector thresholds between windows, and a :class:`CancellationAction`
carries the blame -> select -> cancel decision (§3.3-§3.5) with its
audit trail.  The controller class holds the state and the integration
surface; the pipeline stages hold the loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from .cancellation import CancellationManager
from .config import AtroposConfig
from .controller import BaseController
from .decision_log import (
    CandidateEvidence,
    DecisionAudit,
    DecisionKind,
    DecisionLog,
    DetectorSignal,
    ResourceEvidence,
)
from .detector import OverloadDetector
from .estimator import Estimator, OverloadAssessment
from .pipeline import (
    ActionPolicy,
    ControlPipeline,
    NoAdaptation,
    SignalSource,
)
from .policy import CancellationPolicy, MultiObjectivePolicy
from .runtime import RuntimeManager
from .task import CancellableTask, CancelInitiator
from .types import ResourceHandle

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord


class DetectorSignalSource(SignalSource):
    """Samples the overload detector (and rolls the usage window).

    Produces ``potential_overload``, ``oldest_inflight_age``, and the
    recorded sample's values (``detector_tail_latency``,
    ``detector_throughput``, ``detector_samples``) for downstream
    stages; also flips the runtime's two-mode tracing, which is part of
    the same observation step (§3.2).
    """

    name = "detector"

    def __init__(self, controller: "Atropos") -> None:
        self.controller = controller

    def observe_completion(self, record: "RequestRecord") -> None:
        self.controller.detector.observe_completion(record)

    def sample(self, now: float, signals: Dict[str, Any]) -> None:
        controller = self.controller
        oldest_age = controller._oldest_request_age()
        potential = controller.detector.check(oldest_inflight_age=oldest_age)
        # Two-mode tracing: fine-grained while overload is suspected.
        controller.runtime.set_fine_mode(potential)
        signals["oldest_inflight_age"] = oldest_age
        signals["potential_overload"] = potential
        sample = (
            controller.detector.history[-1]
            if controller.detector.history
            else None
        )
        if sample is not None:
            signals["detector_tail_latency"] = sample.tail_latency
            signals["detector_throughput"] = sample.throughput
            signals["detector_samples"] = sample.samples

    def roll(self, now: float) -> None:
        self.controller.runtime.roll_window()

    def telemetry_snapshot(self) -> Dict[str, Any]:
        return self.controller.detector.telemetry_snapshot()


class CancellationAction(ActionPolicy):
    """The per-window decision: classify, pick a culprit, cancel (§3.3-3.5).

    Mutates the owning controller's counters and decision log so the
    controller's public diagnostics (``regular_overloads``,
    ``last_assessment``, ``cancels_issued``, ``explain()``) keep their
    historical meaning.
    """

    name = "cancellation"

    def __init__(self, controller: "Atropos") -> None:
        self.controller = controller

    def act(self, now: float, signals: Dict[str, Any]) -> None:
        if signals.get("potential_overload"):
            self._handle_potential_overload(
                signals.get("oldest_inflight_age", 0.0)
            )
        else:
            self.controller._regular_overload_active = False

    def _handle_potential_overload(self, oldest_age: float = 0.0) -> None:
        c = self.controller
        now = c.env.now
        sample = c.detector.history[-1] if c.detector.history else None
        c.decision_log.record(
            now,
            DecisionKind.DETECTION,
            "potential overload",
            tail_p99=round(sample.tail_latency, 4) if sample else None,
            throughput=round(sample.throughput, 1) if sample else None,
        )
        assessment = c.estimator.assess(
            resources=list(c.resources.values()),
            tasks=c.live_tasks(),
            use_future_gain=c.policy.uses_future_gain,
        )
        c.last_assessment = assessment
        audit = self._start_audit(now, sample, oldest_age, assessment)
        hottest = assessment.most_contended()
        if not assessment.is_resource_overload:
            # Regular (demand) overload: out of scope for cancellation;
            # delegated to the conventional fallback controller (§3.3).
            c.regular_overloads += 1
            c._regular_overload_active = True
            c.decision_log.record(
                now,
                DecisionKind.CLASSIFICATION,
                "regular (demand) overload -> fallback",
                hottest=str(hottest.resource) if hottest else None,
                contention=round(hottest.contention_norm, 3)
                if hottest
                else None,
            )
            audit.verdict = "regular-overload"
            self._finish_audit(audit)
            return
        c._regular_overload_active = False
        culprit_resource = next(
            (r for r in assessment.resources if r.overloaded and r.concentrated),
            hottest,
        )
        audit.culprit_resource = (
            culprit_resource.resource.name if culprit_resource else None
        )
        c.decision_log.record(
            now,
            DecisionKind.CLASSIFICATION,
            "resource overload",
            resource=str(culprit_resource.resource),
            contention=round(culprit_resource.contention_norm, 3),
            gain_skew=round(culprit_resource.gain_skew, 1)
            if culprit_resource.gain_skew != float("inf")
            else "inf",
        )
        selection = c.policy.select(assessment)
        if selection is None:
            c.decision_log.record(
                now, DecisionKind.CANCEL_BLOCKED, "no cancellable candidate"
            )
            audit.verdict = "no-candidate"
            self._finish_audit(audit)
            return
        task, score = selection
        for candidate in audit.candidates:
            if candidate.task_key == task.key:
                candidate.selected = True
                candidate.score = score
        cancelled = c.cancellation.cancel(
            task,
            resource=hottest.resource if hottest else None,
            score=score,
        )
        if cancelled:
            c.cancels_issued += 1
            c.decision_log.record(
                now,
                DecisionKind.CANCELLATION,
                f"cancelled {task.op_name!r}",
                key=task.key,
                score=round(score, 2),
                progress=round(task.progress(), 2),
            )
            audit.verdict = "cancelled"
            audit.cancelled_task_key = task.key
            audit.cancelled_op_name = task.op_name
        else:
            c.decision_log.record(
                now,
                DecisionKind.CANCEL_BLOCKED,
                f"cancel of {task.op_name!r} blocked",
                in_cooldown=c.cancellation.in_cooldown,
            )
            audit.verdict = "cancel-blocked"
            audit.blocked_reason = (
                "cooldown" if c.cancellation.in_cooldown else "task-state"
            )
        self._finish_audit(audit)

    # ------------------------------------------------------------------
    # Decision-audit trail
    # ------------------------------------------------------------------
    def _start_audit(
        self, now: float, sample, oldest_age: float, assessment
    ) -> DecisionAudit:
        """Snapshot the evidence behind this detection cycle."""
        c = self.controller
        weights = {
            r.resource: r.contention_norm for r in assessment.resources
        }
        candidates = []
        for report in assessment.tasks:
            task = report.task
            gains = {
                resource.name: gain
                for resource, gain in sorted(
                    report.gains.items(), key=lambda item: item[0].name
                )
            }
            # The contention-weighted scalarization every policy's ranking
            # evidence is reported in (§3.5), whether or not the active
            # policy ultimately used it.
            score = sum(
                weights.get(resource, 0.0) * gain
                for resource, gain in report.gains.items()
            )
            candidates.append(
                CandidateEvidence(
                    task_key=task.key,
                    op_name=task.op_name,
                    client_id=task.client_id,
                    kind=task.kind.value,
                    age=round(task.age, 6),
                    progress=round(report.progress, 6),
                    cancellable=task.cancellable,
                    gains={k: round(v, 9) for k, v in gains.items()},
                    score=round(score, 9),
                )
            )
        candidates.sort(key=lambda c: (-(c.score or 0.0), str(c.task_key)))
        return DecisionAudit(
            time=now,
            detector=DetectorSignal(
                tail_latency=sample.tail_latency if sample else None,
                throughput=sample.throughput if sample else None,
                samples=sample.samples if sample else None,
                oldest_inflight_age=oldest_age,
            ),
            resources=[
                ResourceEvidence(
                    resource=r.resource.name,
                    rtype=r.resource.rtype.value,
                    contention_raw=round(r.contention_raw, 9),
                    contention_norm=round(r.contention_norm, 9),
                    threshold=c.config.threshold_for(r.resource.name),
                    overloaded=r.overloaded,
                    concentrated=r.concentrated,
                    gain_skew=r.gain_skew
                    if r.gain_skew != float("inf")
                    else -1.0,
                )
                for r in assessment.resources
            ],
            candidates=candidates,
            verdict="pending",
        )

    def _finish_audit(self, audit: DecisionAudit) -> None:
        """Record the audit and mirror it into the run's tracer."""
        c = self.controller
        c.decision_log.record_audit(audit)
        tracer = c.env.tracer
        if tracer.enabled:
            payload = audit.to_payload()
            tracer.audit(payload)
            tracer.instant(
                audit.time,
                "decision",
                f"{audit.verdict}"
                + (
                    f" {audit.cancelled_op_name}#{audit.cancelled_task_key}"
                    if audit.verdict == "cancelled"
                    else ""
                ),
                "atropos:decisions",
                audit=payload,
            )


class Atropos(BaseController):
    """Targeted-task-cancellation overload controller."""

    name = "atropos"

    def __init__(
        self,
        env: "Environment",
        config: Optional[AtroposConfig] = None,
        policy: Optional[CancellationPolicy] = None,
        fallback: Optional[BaseController] = None,
    ) -> None:
        """
        Args:
            fallback: conventional overload controller consulted when a
                slowdown is classified as *regular* (pure demand) overload
                rather than resource overload (§3.3: "ATROPOS invokes
                other overload control mechanisms in place to handle it").
                Typically a :class:`~repro.baselines.Seda`-style admission
                controller.  When None, regular overload is only counted.
        """
        super().__init__(env)
        self.config = config or AtroposConfig()
        self.runtime = RuntimeManager(env, self.config)
        self.detector = OverloadDetector(env, self.config)
        self.estimator = Estimator(env, self.runtime, self.config)
        self.policy = policy or MultiObjectivePolicy(
            min_age=self.config.min_cancel_age
        )
        self.cancellation = CancellationManager(
            env, self.config, calm_check=self._is_calm
        )
        self.fallback = fallback
        #: Explainable timeline of detections/classifications/cancels.
        self.decision_log = DecisionLog()
        #: Count of detector activations classified as regular overload.
        self.regular_overloads = 0
        #: Most recent assessment (exposed for experiments/diagnostics).
        self.last_assessment: Optional[OverloadAssessment] = None
        self._started = False
        #: True while the current detection window is classified as
        #: regular (demand) overload; routes admission to the fallback.
        self._regular_overload_active = False
        #: The control pipeline (sample -> adapt -> act -> roll).
        self.adaptation = self._build_adaptation()
        self.pipeline = ControlPipeline(
            env,
            period=self.config.detection_period,
            sources=self._build_sources(),
            adaptation=self.adaptation,
            action=CancellationAction(self),
        )

    def _build_adaptation(self):
        if not self.config.adaptive_thresholds:
            return NoAdaptation()
        from .adaptive import AdaptiveThresholdPolicy

        return AdaptiveThresholdPolicy(
            self.detector, self.config, self.decision_log
        )

    def _build_sources(self):
        sources = [DetectorSignalSource(self)]
        if self.config.adaptive_thresholds:
            from ..telemetry.health import HealthMonitor, adaptation_rules
            from .adaptive import HealthSignalSource

            sources.append(
                HealthSignalSource(
                    HealthMonitor(
                        adaptation_rules(self.config.slo_latency)
                    )
                )
            )
            if self.config.history_schedule:
                from .adaptive import HistoryScheduleSource

                sources.append(
                    HistoryScheduleSource(self.config.history_schedule)
                )
        return sources

    # ------------------------------------------------------------------
    # BaseController overrides: task lifecycle
    # ------------------------------------------------------------------
    def create_cancel(self, *args, **kwargs) -> CancellableTask:
        task = super().create_cancel(*args, **kwargs)
        self.runtime.task_started(task)
        return task

    def free_cancel(self, task: CancellableTask) -> None:
        if id(task) in self.tasks:
            self.runtime.task_finished(task)
        super().free_cancel(task)

    def set_cancel_action(self, initiator: CancelInitiator) -> None:
        super().set_cancel_action(initiator)
        self.cancellation.set_initiator(initiator)

    # ------------------------------------------------------------------
    # BaseController overrides: tracing
    # ------------------------------------------------------------------
    def get_resource(
        self, task: CancellableTask, resource: ResourceHandle, amount: float = 1.0
    ) -> None:
        self.runtime.record_get(task, resource, amount)

    def free_resource(
        self, task: CancellableTask, resource: ResourceHandle, amount: float = 1.0
    ) -> None:
        self.runtime.record_free(task, resource, amount)

    def slow_by_resource(
        self,
        task: CancellableTask,
        resource: ResourceHandle,
        delay: float,
        events: float = 1.0,
    ) -> None:
        self.runtime.record_slow_by(task, resource, delay, events)

    def begin_wait(
        self, task: CancellableTask, resource: ResourceHandle
    ) -> None:
        self.runtime.record_wait_start(task, resource)

    def end_wait(
        self, task: CancellableTask, resource: ResourceHandle
    ) -> float:
        return self.runtime.record_wait_end(task, resource)

    def tracing_cost(self, n_events: int = 1) -> float:
        return n_events * self.runtime.event_cost()

    def telemetry_snapshot(self) -> dict:
        """Controller state for the telemetry scraper: cancels, the
        detector's latest sample, signal outcomes, and blame scores."""
        snap = super().telemetry_snapshot()
        snap["detector"] = self.detector.telemetry_snapshot()
        snap["signals"] = self.cancellation.telemetry_snapshot()
        if self.last_assessment is not None:
            snap["blame"] = self.last_assessment.blame_scores()
        return snap

    # ------------------------------------------------------------------
    # Feedback + monitor loop
    # ------------------------------------------------------------------
    def admit(self, op_name: str, client_id: str) -> bool:
        """ATROPOS does no admission control itself; during *regular*
        overload episodes the fallback controller's admission applies."""
        if self.fallback is not None and self._regular_overload_active:
            return self.fallback.admit(op_name, client_id)
        return True

    def observe_completion(self, record: "RequestRecord") -> None:
        self.pipeline.observe_completion(record)
        if self.fallback is not None:
            self.fallback.observe_completion(record)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.fallback is not None:
            self.fallback.start()
        self.pipeline.start()

    # ------------------------------------------------------------------
    # Re-execution
    # ------------------------------------------------------------------
    def reexecution_gate(self, task: CancellableTask, arrival_time: float):
        decision = yield from self.cancellation.reexecution_gate(
            task, arrival_time
        )
        self.decision_log.record(
            self.env.now,
            DecisionKind.REEXECUTION,
            f"{task.op_name!r} -> {decision}",
            key=task.key,
            waited=round(self.env.now - arrival_time, 3),
        )
        return decision

    def explain(self, limit: Optional[int] = None) -> str:
        """Render the decision timeline (operator-facing)."""
        return self.decision_log.render(limit=limit)

    def _oldest_request_age(self) -> float:
        """Age of the oldest live *user request* task (head-of-line signal).

        Background tasks are excluded: they have no SLO and may legally
        run for a long time.
        """
        from .types import TaskKind

        ages = [
            t.age
            for t in self.tasks.values()
            if t.alive and t.kind is TaskKind.REQUEST
        ]
        return max(ages, default=0.0)

    def _is_calm(self) -> bool:
        """No application resource currently over its contention threshold."""
        for resource in self.resources.values():
            norm = self.estimator.contention_norm(resource)
            if norm >= self.config.threshold_for(resource.name):
                return False
        return True
