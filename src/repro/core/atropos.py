"""The ATROPOS overload controller (paper §3, Figure 5).

Wires together the runtime manager (per-task usage tracking), overload
detector, estimator, policy engine, and cancellation manager behind the
shared :class:`~repro.core.controller.BaseController` interface that
applications are instrumented against.

The periodic control loop itself is a
:class:`~repro.core.pipeline.ControlPipeline`: a
:class:`DetectorSignalSource` produces the window's detector signals
(plus, in adaptive mode, a health source consuming them), an
:class:`~repro.core.pipeline.AdaptationPolicy` may move the live
detector thresholds between windows, and a **mitigation lever**
(:mod:`repro.core.levers`) carries the blame -> select -> mitigate
decision (§3.3-§3.5) with its audit trail.  The default
:class:`~repro.core.levers.CancelLever` (historically named
``CancellationAction``; the alias is kept) reproduces the paper's
targeted cancellation byte-for-byte; ``AtroposConfig.lever`` swaps in
lock-queue reshaping or the audited composite.  The controller class
holds the state and the integration surface; the pipeline stages hold
the loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from .cancellation import CancellationManager
from .config import AtroposConfig
from .controller import BaseController
from .decision_log import DecisionKind, DecisionLog
from .detector import OverloadDetector
from .estimator import Estimator, OverloadAssessment
from .levers import CancelLever, resolve_lever
from .pipeline import (
    ControlPipeline,
    NoAdaptation,
    SignalSource,
)
from .policy import CancellationPolicy, MultiObjectivePolicy
from .runtime import RuntimeManager
from .task import CancellableTask, CancelInitiator
from .types import ResourceHandle

#: Backward-compatible alias: the historical action-stage class name.
CancellationAction = CancelLever

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord


class DetectorSignalSource(SignalSource):
    """Samples the overload detector (and rolls the usage window).

    Produces ``potential_overload``, ``oldest_inflight_age``, and the
    recorded sample's values (``detector_tail_latency``,
    ``detector_throughput``, ``detector_samples``) for downstream
    stages; also flips the runtime's two-mode tracing, which is part of
    the same observation step (§3.2).
    """

    name = "detector"

    def __init__(self, controller: "Atropos") -> None:
        self.controller = controller

    def observe_completion(self, record: "RequestRecord") -> None:
        self.controller.detector.observe_completion(record)

    def sample(self, now: float, signals: Dict[str, Any]) -> None:
        controller = self.controller
        oldest_age = controller._oldest_request_age()
        potential = controller.detector.check(oldest_inflight_age=oldest_age)
        # Two-mode tracing: fine-grained while overload is suspected.
        controller.runtime.set_fine_mode(potential)
        signals["oldest_inflight_age"] = oldest_age
        signals["potential_overload"] = potential
        sample = (
            controller.detector.history[-1]
            if controller.detector.history
            else None
        )
        if sample is not None:
            signals["detector_tail_latency"] = sample.tail_latency
            signals["detector_throughput"] = sample.throughput
            signals["detector_samples"] = sample.samples

    def roll(self, now: float) -> None:
        self.controller.runtime.roll_window()

    def telemetry_snapshot(self) -> Dict[str, Any]:
        return self.controller.detector.telemetry_snapshot()


class Atropos(BaseController):
    """Targeted-task-cancellation overload controller."""

    name = "atropos"

    def __init__(
        self,
        env: "Environment",
        config: Optional[AtroposConfig] = None,
        policy: Optional[CancellationPolicy] = None,
        fallback: Optional[BaseController] = None,
    ) -> None:
        """
        Args:
            fallback: conventional overload controller consulted when a
                slowdown is classified as *regular* (pure demand) overload
                rather than resource overload (§3.3: "ATROPOS invokes
                other overload control mechanisms in place to handle it").
                Typically a :class:`~repro.baselines.Seda`-style admission
                controller.  When None, regular overload is only counted.
        """
        super().__init__(env)
        self.config = config or AtroposConfig()
        self.runtime = RuntimeManager(env, self.config)
        self.detector = OverloadDetector(env, self.config)
        self.estimator = Estimator(env, self.runtime, self.config)
        self.policy = policy or MultiObjectivePolicy(
            min_age=self.config.min_cancel_age
        )
        self.cancellation = CancellationManager(
            env, self.config, calm_check=self._is_calm
        )
        self.fallback = fallback
        #: Explainable timeline of detections/classifications/cancels.
        self.decision_log = DecisionLog()
        #: Count of detector activations classified as regular overload.
        self.regular_overloads = 0
        #: Most recent assessment (exposed for experiments/diagnostics).
        self.last_assessment: Optional[OverloadAssessment] = None
        self._started = False
        #: True while the current detection window is classified as
        #: regular (demand) overload; routes admission to the fallback.
        self._regular_overload_active = False
        #: The active mitigation lever (the pipeline's action stage).
        self.lever = resolve_lever(self.config.lever)(self)
        #: The control pipeline (sample -> adapt -> act -> roll).
        self.adaptation = self._build_adaptation()
        self.pipeline = ControlPipeline(
            env,
            period=self.config.detection_period,
            sources=self._build_sources(),
            adaptation=self.adaptation,
            action=self.lever,
        )

    def bind(self, app) -> None:
        """Let the lever discover app resources (locks) at bind time."""
        self.pipeline.bind(app)

    def _build_adaptation(self):
        if not self.config.adaptive_thresholds:
            return NoAdaptation()
        from .adaptive import AdaptiveThresholdPolicy

        return AdaptiveThresholdPolicy(
            self.detector, self.config, self.decision_log
        )

    def _build_sources(self):
        sources = [DetectorSignalSource(self)]
        if self.config.adaptive_thresholds:
            from ..telemetry.health import HealthMonitor, adaptation_rules
            from .adaptive import HealthSignalSource

            sources.append(
                HealthSignalSource(
                    HealthMonitor(
                        adaptation_rules(self.config.slo_latency)
                    )
                )
            )
            if self.config.history_schedule:
                from .adaptive import HistoryScheduleSource

                sources.append(
                    HistoryScheduleSource(self.config.history_schedule)
                )
        return sources

    # ------------------------------------------------------------------
    # BaseController overrides: task lifecycle
    # ------------------------------------------------------------------
    def create_cancel(self, *args, **kwargs) -> CancellableTask:
        task = super().create_cancel(*args, **kwargs)
        self.runtime.task_started(task)
        return task

    def free_cancel(self, task: CancellableTask) -> None:
        if id(task) in self.tasks:
            self.runtime.task_finished(task)
        super().free_cancel(task)

    def set_cancel_action(self, initiator: CancelInitiator) -> None:
        super().set_cancel_action(initiator)
        self.cancellation.set_initiator(initiator)

    # ------------------------------------------------------------------
    # BaseController overrides: tracing
    # ------------------------------------------------------------------
    def get_resource(
        self, task: CancellableTask, resource: ResourceHandle, amount: float = 1.0
    ) -> None:
        self.runtime.record_get(task, resource, amount)

    def free_resource(
        self, task: CancellableTask, resource: ResourceHandle, amount: float = 1.0
    ) -> None:
        self.runtime.record_free(task, resource, amount)

    def slow_by_resource(
        self,
        task: CancellableTask,
        resource: ResourceHandle,
        delay: float,
        events: float = 1.0,
    ) -> None:
        self.runtime.record_slow_by(task, resource, delay, events)

    def begin_wait(
        self, task: CancellableTask, resource: ResourceHandle
    ) -> None:
        self.runtime.record_wait_start(task, resource)

    def end_wait(
        self, task: CancellableTask, resource: ResourceHandle
    ) -> float:
        return self.runtime.record_wait_end(task, resource)

    def tracing_cost(self, n_events: int = 1) -> float:
        return n_events * self.runtime.event_cost()

    def telemetry_snapshot(self) -> dict:
        """Controller state for the telemetry scraper: cancels, the
        detector's latest sample, signal outcomes, and blame scores."""
        snap = super().telemetry_snapshot()
        snap["detector"] = self.detector.telemetry_snapshot()
        snap["signals"] = self.cancellation.telemetry_snapshot()
        snap["lever"] = self.lever.telemetry_snapshot()
        if self.last_assessment is not None:
            snap["blame"] = self.last_assessment.blame_scores()
        return snap

    # ------------------------------------------------------------------
    # Feedback + monitor loop
    # ------------------------------------------------------------------
    def admit(self, op_name: str, client_id: str) -> bool:
        """ATROPOS does no admission control itself; during *regular*
        overload episodes the fallback controller's admission applies."""
        if self.fallback is not None and self._regular_overload_active:
            return self.fallback.admit(op_name, client_id)
        return True

    def observe_completion(self, record: "RequestRecord") -> None:
        self.pipeline.observe_completion(record)
        if self.fallback is not None:
            self.fallback.observe_completion(record)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.fallback is not None:
            self.fallback.start()
        self.pipeline.start()

    # ------------------------------------------------------------------
    # Re-execution
    # ------------------------------------------------------------------
    def reexecution_gate(self, task: CancellableTask, arrival_time: float):
        decision = yield from self.cancellation.reexecution_gate(
            task, arrival_time
        )
        self.decision_log.record(
            self.env.now,
            DecisionKind.REEXECUTION,
            f"{task.op_name!r} -> {decision}",
            key=task.key,
            waited=round(self.env.now - arrival_time, 3),
        )
        return decision

    def explain(self, limit: Optional[int] = None) -> str:
        """Render the decision timeline (operator-facing)."""
        return self.decision_log.render(limit=limit)

    def _oldest_request_age(self) -> float:
        """Age of the oldest live *user request* task (head-of-line signal).

        Background tasks are excluded: they have no SLO and may legally
        run for a long time.
        """
        from .types import TaskKind

        ages = [
            t.age
            for t in self.tasks.values()
            if t.alive and t.kind is TaskKind.REQUEST
        ]
        return max(ages, default=0.0)

    def _is_calm(self) -> bool:
        """No application resource currently over its contention threshold."""
        for resource in self.resources.values():
            norm = self.estimator.contention_norm(resource)
            if norm >= self.config.threshold_for(resource.name):
                return False
        return True
