"""The ATROPOS estimator (paper §3.4): contention level and resource gain.

Two unit-less metrics characterize overload:

* **contention level** -- per resource, how contended it is.  The raw form
  is resource-class specific (eviction ratio for MEMORY; wait/use time
  ratio for LOCK and QUEUE-like resources).  The *normalized* form, used
  as scalarization weights, expresses contention as the fraction of
  execution time in the window lost to that resource (§3.5).

* **resource gain** -- per (task, resource), the *future* usage freed by
  cancelling the task: current usage scaled by the remaining-workload
  factor ``(1 - prog) / prog`` under the proportional-demand model, with
  progress from the GetNext model.

Fault injection: :attr:`Estimator.gain_tap` (default ``None``) is a
callable ``(now, gain) -> gain`` installed by :mod:`repro.faults` to
corrupt each per-(task, resource) gain before :meth:`Estimator.assess`
hands it to the policy engine -- modelling a tracing layer whose usage
ledger has drifted (lost events, stale progress).  Contention levels are
left clean: the paper derives them from coarse counters that are much
harder to corrupt than per-task attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from .config import AtroposConfig
from .ledger import UsageStats
from .progress import future_gain_multiplier
from .runtime import RuntimeManager
from .task import CancellableTask
from .types import ResourceHandle, ResourceType

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment

_EPS = 1e-9


@dataclass
class ResourceReport:
    """Estimator output for one resource over the current window."""

    resource: ResourceHandle
    #: Class-specific raw contention (eviction ratio / wait-use ratio).
    contention_raw: float
    #: Normalized contention: fraction of window execution time lost.
    contention_norm: float
    #: Whether the normalized level crosses the overload threshold.
    overloaded: bool
    #: Top task gain over mean positive gain on this resource (inf when a
    #: single task accounts for everything; 0 when nobody gains).
    gain_skew: float = 0.0
    #: True when the contention is attributable to a concentrated culprit
    #: (high gain skew) rather than uniform aggregate demand.
    concentrated: bool = False


@dataclass
class TaskReport:
    """Estimator output for one task: gain per resource."""

    task: CancellableTask
    progress: float
    gains: Dict[ResourceHandle, float] = field(default_factory=dict)

    def gain(self, resource: ResourceHandle) -> float:
        return self.gains.get(resource, 0.0)

    @property
    def total_raw_gain(self) -> float:
        return sum(self.gains.values())


@dataclass
class OverloadAssessment:
    """Full estimator snapshot for one detection window."""

    resources: List[ResourceReport]
    tasks: List[TaskReport]

    @property
    def overloaded_resources(self) -> List[ResourceReport]:
        return [r for r in self.resources if r.overloaded]

    @property
    def is_resource_overload(self) -> bool:
        """True if a specific application resource is the bottleneck.

        Requires both a contended resource *and* a concentrated culprit
        on it.  False means the slowdown is "regular" overload (pure
        demand, gains spread uniformly across requests) and should be
        handled by conventional admission control (§3.3).
        """
        return any(r.overloaded and r.concentrated for r in self.resources)

    def most_contended(self) -> Optional[ResourceReport]:
        if not self.resources:
            return None
        return max(self.resources, key=lambda r: r.contention_norm)

    def blame_scores(self) -> Dict[str, float]:
        """Normalized contention per resource name (telemetry blame)."""
        return {
            r.resource.name: r.contention_norm for r in self.resources
        }


class Estimator:
    """Computes contention levels and per-task resource gains.

    Fault-injection hook: :attr:`gain_tap`, a callable
    ``(now, gain) -> gain`` applied to every per-(task, resource) gain
    inside :meth:`assess` (``None`` = clean gains).
    """

    def __init__(
        self,
        env: "Environment",
        runtime: RuntimeManager,
        config: AtroposConfig,
    ) -> None:
        self.env = env
        self.runtime = runtime
        self.config = config
        #: Gain-corruption tap installed by :mod:`repro.faults`.
        self.gain_tap = None

    # ------------------------------------------------------------------
    # Contention level
    # ------------------------------------------------------------------
    def contention_raw(self, resource: ResourceHandle) -> float:
        """Class-specific raw contention over the current window."""
        stats = self.runtime.ledger.resource_window(resource)
        if resource.rtype is ResourceType.MEMORY:
            # Average eviction ratio: evictions per acquired page.
            if stats.acquired <= _EPS:
                return 0.0
            return stats.wait_events / stats.acquired
        # LOCK / QUEUE / CPU / IO: waiting time over usage time.  Open
        # (in-progress) waits are included so a forming convoy -- where no
        # grant ever completes -- is visible immediately.
        waiting = stats.wait_time + self._open_wait_time(resource)
        usage = stats.hold_time + self._open_hold_time(resource)
        if usage <= _EPS:
            # Waiting with no one using it at all: treat any wait as severe.
            return waiting / _EPS if waiting > _EPS else 0.0
        return waiting / usage

    def _open_hold_time(self, resource: ResourceHandle) -> float:
        """Sum of in-progress hold durations on ``resource``."""
        ledger = self.runtime.ledger
        now = self.env.now
        total = 0.0
        for task_key in ledger.tasks_touching(resource):
            total += ledger.current_hold(task_key, resource, now)
        return total

    def _open_wait_time(self, resource: ResourceHandle) -> float:
        """Sum of in-progress wait durations on ``resource``."""
        return self.runtime.ledger.open_wait_time(resource, self.env.now)

    def contention_norm(self, resource: ResourceHandle) -> float:
        """Normalized contention: delay share of window execution time."""
        stats = self.runtime.ledger.resource_window(resource)
        exec_seconds = self.runtime.activity.window_task_seconds()
        if exec_seconds <= _EPS:
            return 0.0
        if resource.rtype is ResourceType.MEMORY:
            if stats.acquired > _EPS:
                # Eviction stall time, weighted by how contended the pool
                # is: the same stall matters more when the eviction ratio
                # is high.
                delay = stats.wait_time * min(
                    1.0, self.contention_raw(resource)
                )
            else:
                # Pure stall regime (e.g. GC pauses from heap occupancy):
                # nobody acquires pages in the window, but tasks are still
                # losing time to the memory resource.
                delay = stats.wait_time
        else:
            delay = stats.wait_time + self._open_wait_time(resource)
        return min(1.0, delay / exec_seconds)

    # ------------------------------------------------------------------
    # Resource gain
    # ------------------------------------------------------------------
    def resource_gain(
        self, task: CancellableTask, resource: ResourceHandle
    ) -> float:
        """Future usage of ``resource`` freed by cancelling ``task``."""
        ledger = self.runtime.ledger
        stats = ledger.task_total(id(task), resource)
        multiplier = future_gain_multiplier(task.progress())
        if resource.rtype is ResourceType.MEMORY:
            current = stats.held  # pages currently held
        elif resource.rtype in (ResourceType.LOCK, ResourceType.QUEUE):
            # Current holding time (open interval), per the paper's lock
            # example: "held a table lock for 1s at 40% progress -> 1.5s".
            current = ledger.current_hold(id(task), resource, self.env.now)
            if current <= 0.0:
                current = stats.hold_time
        elif resource.rtype is ResourceType.CPU:
            current = stats.acquired  # CPU-seconds consumed
        else:  # IO
            current = stats.acquired  # bytes transferred
        return current * multiplier

    def current_usage(
        self, task: CancellableTask, resource: ResourceHandle
    ) -> float:
        """Gain without the future scaling (the Fig 13 ablation baseline)."""
        ledger = self.runtime.ledger
        stats = ledger.task_total(id(task), resource)
        if resource.rtype is ResourceType.MEMORY:
            return stats.held
        if resource.rtype in (ResourceType.LOCK, ResourceType.QUEUE):
            current = ledger.current_hold(id(task), resource, self.env.now)
            return current if current > 0 else stats.hold_time
        return stats.acquired

    # ------------------------------------------------------------------
    # Full assessment
    # ------------------------------------------------------------------
    def assess(
        self,
        resources: List[ResourceHandle],
        tasks: List[CancellableTask],
        use_future_gain: bool = True,
    ) -> OverloadAssessment:
        """Snapshot contention and gains for the policy engine."""
        resource_reports = []
        for resource in resources:
            raw = self.contention_raw(resource)
            norm = self.contention_norm(resource)
            resource_reports.append(
                ResourceReport(
                    resource=resource,
                    contention_raw=raw,
                    contention_norm=norm,
                    overloaded=norm >= self.config.threshold_for(resource.name),
                )
            )
        task_reports = []
        for task in tasks:
            report = TaskReport(task=task, progress=task.progress())
            for resource in resources:
                if use_future_gain:
                    gain = self.resource_gain(task, resource)
                else:
                    gain = self.current_usage(task, resource)
                if self.gain_tap is not None:
                    gain = self.gain_tap(self.env.now, gain)
                if gain > 0.0:
                    report.gains[resource] = gain
            task_reports.append(report)
        for resource_report in resource_reports:
            self._assess_concentration(resource_report, task_reports)
        return OverloadAssessment(resources=resource_reports, tasks=task_reports)

    def _assess_concentration(
        self, resource_report: ResourceReport, task_reports: List[TaskReport]
    ) -> None:
        """Decide whether the contention has a concentrated culprit.

        Uniform tiny gains mean aggregate demand (regular overload, §3.3),
        where cancelling any single request would be indiscriminate.  Two
        tests, by gain unit:

        * **time-typed** resources (LOCK/QUEUE/CPU -- gains in seconds):
          a task whose expected future hold alone exceeds a multiple of
          the SLO is a monopolist by definition.  This stays correct even
          when the resource is fully occupied by several similar culprits
          and the victims (who hold nothing) are invisible in the ledger.
        * **quantity-typed** resources (MEMORY pages / IO bytes): gains
          are not SLO-comparable; use the max/median skew of positive
          gains (one or two gainers are concentrated by construction).
        """
        import statistics

        resource = resource_report.resource
        gains = [
            tr.gain(resource)
            for tr in task_reports
            if tr.gain(resource) > 0.0
        ]
        if not gains:
            resource_report.gain_skew = 0.0
            resource_report.concentrated = False
            return
        if resource.rtype in (
            ResourceType.LOCK,
            ResourceType.QUEUE,
            ResourceType.CPU,
        ):
            budget = (
                self.config.culprit_gain_slo_multiple
                * self.config.slo_latency
            )
            top = max(gains)
            resource_report.gain_skew = top / budget if budget > 0 else 0.0
            resource_report.concentrated = top >= budget
            return
        if len(gains) <= 2:
            resource_report.gain_skew = float("inf")
            resource_report.concentrated = True
            return
        skew = max(gains) / statistics.median(gains)
        resource_report.gain_skew = skew
        resource_report.concentrated = skew >= self.config.gain_skew_threshold
