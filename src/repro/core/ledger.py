"""Per-task, per-resource usage accounting (paper §3.2).

The runtime manager records every ``get`` / ``free`` / ``slow-by`` event
into this ledger.  Counters are kept twice: cumulative since task start,
and per detection window (the estimator consumes window deltas so that
contention reflects *current* behaviour, not history).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .types import ResourceHandle


@dataclass
class UsageStats:
    """Raw counters for one (task, resource) or one resource aggregate."""

    #: Units acquired (pages for MEMORY, grants for LOCK/QUEUE, seconds
    #: for CPU, bytes for IO).
    acquired: float = 0.0
    #: Units released.
    released: float = 0.0
    #: Seconds of delay attributed to this resource (lock wait, queue
    #: wait, eviction stall, run-queue wait, device queueing).
    wait_time: float = 0.0
    #: Number of slow-by events (evictions for MEMORY).
    wait_events: float = 0.0
    #: Seconds the resource was held, over completed hold intervals.
    hold_time: float = 0.0

    @property
    def held(self) -> float:
        """Units currently held (never negative even with noisy tracing)."""
        return max(0.0, self.acquired - self.released)

    def add(self, other: "UsageStats") -> None:
        self.acquired += other.acquired
        self.released += other.released
        self.wait_time += other.wait_time
        self.wait_events += other.wait_events
        self.hold_time += other.hold_time

    def copy(self) -> "UsageStats":
        return UsageStats(
            acquired=self.acquired,
            released=self.released,
            wait_time=self.wait_time,
            wait_events=self.wait_events,
            hold_time=self.hold_time,
        )

    def reset(self) -> None:
        self.acquired = 0.0
        self.released = 0.0
        self.wait_time = 0.0
        self.wait_events = 0.0
        self.hold_time = 0.0


@dataclass
class HoldTracker:
    """Tracks the open holding interval for a (task, resource) pair.

    Application tasks hold a given resource through nested or repeated
    grants; we track the outermost interval (depth counting), which is the
    right granularity for "how long has this task been monopolizing the
    resource".
    """

    open_depth: int = 0
    open_since: Optional[float] = None

    def on_get(self, now: float) -> None:
        if self.open_depth == 0:
            self.open_since = now
        self.open_depth += 1

    def on_free(self, now: float) -> float:
        """Returns the completed hold duration (0 while still nested)."""
        if self.open_depth == 0:
            return 0.0
        self.open_depth -= 1
        if self.open_depth == 0 and self.open_since is not None:
            duration = now - self.open_since
            self.open_since = None
            return duration
        return 0.0

    def current_hold(self, now: float) -> float:
        if self.open_since is None:
            return 0.0
        return now - self.open_since


Key = Tuple[int, ResourceHandle]  # (task id(), resource)


class UsageLedger:
    """Windowed + cumulative usage accounting across tasks and resources."""

    def __init__(self) -> None:
        #: (task-key, resource) -> stats.
        self._task_total: Dict[Key, UsageStats] = {}
        self._task_window: Dict[Key, UsageStats] = {}
        self._holds: Dict[Key, HoldTracker] = {}
        #: Open wait intervals (task queued on a resource, not yet granted).
        self._waits: Dict[Key, HoldTracker] = {}
        #: resource -> aggregate stats.
        self._resource_total: Dict[ResourceHandle, UsageStats] = {}
        self._resource_window: Dict[ResourceHandle, UsageStats] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _stats(self, table: Dict, key) -> UsageStats:
        stats = table.get(key)
        if stats is None:
            stats = UsageStats()
            table[key] = stats
        return stats

    def record_get(
        self, task_key: int, resource: ResourceHandle, amount: float, now: float
    ) -> None:
        key = (task_key, resource)
        self._stats(self._task_total, key).acquired += amount
        self._stats(self._task_window, key).acquired += amount
        self._stats(self._resource_total, resource).acquired += amount
        self._stats(self._resource_window, resource).acquired += amount
        self._stats_hold(key).on_get(now)

    def record_free(
        self, task_key: int, resource: ResourceHandle, amount: float, now: float
    ) -> None:
        key = (task_key, resource)
        self._stats(self._task_total, key).released += amount
        self._stats(self._task_window, key).released += amount
        self._stats(self._resource_total, resource).released += amount
        self._stats(self._resource_window, resource).released += amount
        duration = self._stats_hold(key).on_free(now)
        if duration > 0:
            self._stats(self._task_total, key).hold_time += duration
            self._stats(self._task_window, key).hold_time += duration
            self._stats(self._resource_total, resource).hold_time += duration
            self._stats(self._resource_window, resource).hold_time += duration

    def record_slow_by(
        self,
        task_key: int,
        resource: ResourceHandle,
        delay: float,
        events: float = 1.0,
    ) -> None:
        key = (task_key, resource)
        for table, k in (
            (self._task_total, key),
            (self._task_window, key),
            (self._resource_total, resource),
            (self._resource_window, resource),
        ):
            stats = self._stats(table, k)
            stats.wait_time += delay
            stats.wait_events += events

    def _stats_hold(self, key: Key) -> HoldTracker:
        tracker = self._holds.get(key)
        if tracker is None:
            tracker = HoldTracker()
            self._holds[key] = tracker
        return tracker

    # ------------------------------------------------------------------
    # Open waits (in-progress queueing on a resource)
    # ------------------------------------------------------------------
    def record_wait_start(
        self, task_key: int, resource: ResourceHandle, now: float
    ) -> None:
        """A task started waiting on ``resource`` (before the grant).

        Open waits let the estimator see a convoy *while it is forming*:
        blocked tasks never reach the grant point where closed wait time
        would be recorded.
        """
        key = (task_key, resource)
        tracker = self._waits.get(key)
        if tracker is None:
            tracker = HoldTracker()
            self._waits[key] = tracker
        tracker.on_get(now)

    def record_wait_end(
        self, task_key: int, resource: ResourceHandle, now: float
    ) -> float:
        """Close an open wait; records the duration as slow-by time."""
        tracker = self._waits.get((task_key, resource))
        if tracker is None:
            return 0.0
        duration = tracker.on_free(now)
        if duration > 0:
            self.record_slow_by(task_key, resource, duration)
        return duration

    def current_wait(
        self, task_key: int, resource: ResourceHandle, now: float
    ) -> float:
        tracker = self._waits.get((task_key, resource))
        return tracker.current_hold(now) if tracker else 0.0

    def open_wait_time(self, resource: ResourceHandle, now: float) -> float:
        """Sum of all in-progress wait durations on ``resource``."""
        total = 0.0
        for (task_key, res), tracker in self._waits.items():
            if res == resource:
                total += tracker.current_hold(now)
        return total

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def task_total(self, task_key: int, resource: ResourceHandle) -> UsageStats:
        return self._task_total.get((task_key, resource), UsageStats())

    def task_window(self, task_key: int, resource: ResourceHandle) -> UsageStats:
        return self._task_window.get((task_key, resource), UsageStats())

    def resource_total(self, resource: ResourceHandle) -> UsageStats:
        return self._resource_total.get(resource, UsageStats())

    def resource_window(self, resource: ResourceHandle) -> UsageStats:
        return self._resource_window.get(resource, UsageStats())

    def current_hold(
        self, task_key: int, resource: ResourceHandle, now: float
    ) -> float:
        tracker = self._holds.get((task_key, resource))
        return tracker.current_hold(now) if tracker else 0.0

    def tasks_touching(self, resource: ResourceHandle) -> list:
        """Task keys with any recorded activity on ``resource``."""
        return [
            task_key
            for (task_key, res) in self._task_total.keys()
            if res == resource
        ]

    # ------------------------------------------------------------------
    # Window management
    # ------------------------------------------------------------------
    def roll_window(self) -> None:
        """Start a new detection window (clears windowed counters)."""
        self._task_window.clear()
        self._resource_window.clear()

    def forget_task(self, task_key: int) -> None:
        """Drop all state for a finished task (bounds memory)."""
        for table in (
            self._task_total,
            self._task_window,
            self._holds,
            self._waits,
        ):
            stale = [k for k in table if k[0] == task_key]
            for k in stale:
                del table[k]
