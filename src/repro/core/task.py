"""The cancellable-task abstraction (paper §3.1).

A :class:`CancellableTask` is a logical unit of work an application
registered through ``create_cancel``: a user request, a group of requests
from one connection, or a background task.  It is the unit of resource
attribution and the unit of cancellation.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from .progress import ProgressModel, UnknownProgress
from .types import CancelSignal, TaskKind

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.process import Process

#: Shared stateless default progress model (one per process, not per task).
_UNKNOWN_PROGRESS = UnknownProgress()


class TaskState(enum.Enum):
    RUNNING = "running"
    #: A cancel decision was made; the initiator has been invoked but the
    #: task has not yet unwound (it observes the interrupt at its next
    #: checkpoint).
    CANCELLING = "cancelling"
    CANCELLED = "cancelled"
    FINISHED = "finished"


class CancellableTask:
    """One registered unit of cancellable work."""

    def __init__(
        self,
        env: "Environment",
        key: Any,
        kind: TaskKind = TaskKind.REQUEST,
        client_id: str = "anonymous",
        op_name: str = "op",
        process: Optional["Process"] = None,
        progress: Optional[ProgressModel] = None,
        cancellable: bool = True,
    ) -> None:
        self.env = env
        self.key = key
        self.kind = kind
        self.client_id = client_id
        self.op_name = op_name
        #: The simulated process executing this task; the default
        #: cancellation initiator interrupts it.
        self.process = process
        self.progress_model: ProgressModel = progress or _UNKNOWN_PROGRESS
        self.created_at = env.now
        self.state = TaskState.RUNNING
        #: Times this task has been cancelled (the fairness rule allows
        #: at most one cancellation per task; re-executions are marked
        #: non-cancellable).
        self.cancel_count = 0
        self._cancellable = cancellable
        self.cancel_signal: Optional[CancelSignal] = None
        #: Free-form per-task annotations (used by controllers).
        self.metadata: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def age(self) -> float:
        return self.env.now - self.created_at

    @property
    def alive(self) -> bool:
        return self.state in (TaskState.RUNNING, TaskState.CANCELLING)

    @property
    def cancellable(self) -> bool:
        """Eligible for a cancellation decision right now.

        Requires: registered as cancellable, still running (not already
        being cancelled), never cancelled before (fairness, §4), and an
        attached process to deliver the interrupt to.
        """
        return (
            self._cancellable
            and self.state is TaskState.RUNNING
            and self.cancel_count == 0
            and self.process is not None
            and self.process.is_alive
        )

    def mark_non_cancellable(self) -> None:
        """Exempt this task from future cancellations (re-executed tasks)."""
        self._cancellable = False

    def progress(self) -> float:
        """Current progress estimate in (0, 1]."""
        return self.progress_model.value(self.env.now)

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    def begin_cancel(self, signal: CancelSignal) -> None:
        if not self.alive:
            raise RuntimeError(f"cannot cancel {self!r} in state {self.state}")
        self.state = TaskState.CANCELLING
        self.cancel_count += 1
        self.cancel_signal = signal

    def finish(self) -> None:
        """Terminal transition when the task unwinds (any reason)."""
        if self.state is TaskState.CANCELLING:
            self.state = TaskState.CANCELLED
        elif self.state is TaskState.RUNNING:
            self.state = TaskState.FINISHED
        # Re-finishing an already-terminal task is a no-op (idempotent
        # free_cancel calls from finally blocks).

    def __repr__(self) -> str:
        return (
            f"<CancellableTask key={self.key!r} op={self.op_name!r} "
            f"{self.state.value}>"
        )


#: Type of a cancellation initiator: the application function invoked to
#: cancel a task (the paper's setCancelAction callback, e.g. MySQL's
#: sql_kill).
CancelInitiator = Callable[[CancellableTask, CancelSignal], None]


def default_initiator(task: CancellableTask, signal: CancelSignal) -> None:
    """Default initiator: interrupt the task's simulated process.

    The interrupt surfaces at the task's next checkpoint (yield point),
    where the application's try/finally blocks release held resources --
    the safe-cancellation pattern of §2.4.
    """
    if task.process is None or not task.process.is_alive:
        return
    task.process.interrupt(signal)
