"""ATROPOS core: targeted task cancellation for resource overload.

Public API (mirrors the paper's Figure 6 integration surface):

* task lifecycle -- ``controller.create_cancel`` / ``free_cancel`` /
  ``set_cancel_action``;
* resource tracing -- ``controller.get_resource`` / ``free_resource`` /
  ``slow_by_resource`` with a :class:`ResourceType`;
* the :class:`Atropos` controller itself, plus the policy ablations and
  the :class:`NullController` used as the uncontrolled baseline;
* the control-plane pipeline primitives -- :class:`ControlPipeline`
  composing :class:`SignalSource` / :class:`AdaptationPolicy` /
  :class:`ActionPolicy` stages -- that every controller's periodic loop
  is built from, and the health-driven
  :class:`AdaptiveThresholdPolicy` closing the loop on the detector's
  live thresholds.
"""

from .adaptive import AdaptiveThresholdPolicy, HealthSignalSource
from .atropos import Atropos, CancellationAction, DetectorSignalSource
from .cancellation import CancellationEvent, CancellationManager
from .config import AtroposConfig
from .controller import BaseController, NullController
from .decision_log import DecisionEvent, DecisionKind, DecisionLog
from .detector import DetectionSample, LiveThresholds, OverloadDetector
from .estimator import (
    Estimator,
    OverloadAssessment,
    ResourceReport,
    TaskReport,
)
from .ledger import UsageLedger, UsageStats
from .levers import (
    LEVERS,
    CancelLever,
    CompositeLever,
    LockScheduleLever,
    MitigationLever,
    resolve_lever,
)
from .pipeline import (
    ActionPolicy,
    AdaptationPolicy,
    ControlPipeline,
    LatencyWindowSource,
    NoAdaptation,
    SignalSource,
)
from .policy import (
    CancellationPolicy,
    CurrentUsagePolicy,
    GreedyHeuristicPolicy,
    MultiObjectivePolicy,
    dominates,
    non_dominated_set,
)
from .progress import (
    CallbackProgress,
    GetNextProgress,
    ProgressModel,
    TimeBasedProgress,
    UnknownProgress,
    clamp_progress,
    future_gain_multiplier,
)
from .runtime import RuntimeManager
from .task import CancellableTask, TaskState, default_initiator
from .types import (
    CancelSignal,
    DropRequest,
    ResourceHandle,
    ResourceType,
    TaskKind,
)

__all__ = [
    "ActionPolicy",
    "AdaptationPolicy",
    "AdaptiveThresholdPolicy",
    "Atropos",
    "AtroposConfig",
    "BaseController",
    "CallbackProgress",
    "CancelSignal",
    "CancelLever",
    "CancellableTask",
    "CancellationAction",
    "CancellationEvent",
    "CancellationManager",
    "CancellationPolicy",
    "CompositeLever",
    "ControlPipeline",
    "CurrentUsagePolicy",
    "DecisionEvent",
    "DecisionKind",
    "DecisionLog",
    "DetectionSample",
    "DetectorSignalSource",
    "DropRequest",
    "Estimator",
    "GetNextProgress",
    "GreedyHeuristicPolicy",
    "HealthSignalSource",
    "LEVERS",
    "LatencyWindowSource",
    "LiveThresholds",
    "LockScheduleLever",
    "MitigationLever",
    "MultiObjectivePolicy",
    "NoAdaptation",
    "NullController",
    "OverloadAssessment",
    "OverloadDetector",
    "ProgressModel",
    "ResourceHandle",
    "ResourceReport",
    "ResourceType",
    "RuntimeManager",
    "SignalSource",
    "TaskKind",
    "TaskReport",
    "TaskState",
    "TimeBasedProgress",
    "UnknownProgress",
    "UsageLedger",
    "UsageStats",
    "clamp_progress",
    "default_initiator",
    "dominates",
    "resolve_lever",
    "future_gain_multiplier",
    "non_dominated_set",
]
