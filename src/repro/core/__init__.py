"""ATROPOS core: targeted task cancellation for resource overload.

Public API (mirrors the paper's Figure 6 integration surface):

* task lifecycle -- ``controller.create_cancel`` / ``free_cancel`` /
  ``set_cancel_action``;
* resource tracing -- ``controller.get_resource`` / ``free_resource`` /
  ``slow_by_resource`` with a :class:`ResourceType`;
* the :class:`Atropos` controller itself, plus the policy ablations and
  the :class:`NullController` used as the uncontrolled baseline.
"""

from .atropos import Atropos
from .cancellation import CancellationEvent, CancellationManager
from .config import AtroposConfig
from .controller import BaseController, NullController
from .decision_log import DecisionEvent, DecisionKind, DecisionLog
from .detector import DetectionSample, OverloadDetector
from .estimator import (
    Estimator,
    OverloadAssessment,
    ResourceReport,
    TaskReport,
)
from .ledger import UsageLedger, UsageStats
from .policy import (
    CancellationPolicy,
    CurrentUsagePolicy,
    GreedyHeuristicPolicy,
    MultiObjectivePolicy,
    dominates,
    non_dominated_set,
)
from .progress import (
    CallbackProgress,
    GetNextProgress,
    ProgressModel,
    TimeBasedProgress,
    UnknownProgress,
    clamp_progress,
    future_gain_multiplier,
)
from .runtime import RuntimeManager
from .task import CancellableTask, TaskState, default_initiator
from .types import (
    CancelSignal,
    DropRequest,
    ResourceHandle,
    ResourceType,
    TaskKind,
)

__all__ = [
    "Atropos",
    "AtroposConfig",
    "BaseController",
    "CallbackProgress",
    "CancelSignal",
    "CancellableTask",
    "CancellationEvent",
    "CancellationManager",
    "CancellationPolicy",
    "CurrentUsagePolicy",
    "DecisionEvent",
    "DecisionKind",
    "DecisionLog",
    "DetectionSample",
    "DropRequest",
    "Estimator",
    "GetNextProgress",
    "GreedyHeuristicPolicy",
    "MultiObjectivePolicy",
    "NullController",
    "OverloadAssessment",
    "OverloadDetector",
    "ProgressModel",
    "ResourceHandle",
    "ResourceReport",
    "ResourceType",
    "RuntimeManager",
    "TaskKind",
    "TaskReport",
    "TaskState",
    "TimeBasedProgress",
    "UnknownProgress",
    "UsageLedger",
    "UsageStats",
    "clamp_progress",
    "default_initiator",
    "dominates",
    "future_gain_multiplier",
    "non_dominated_set",
]
