"""Cancellation policies (paper §3.5, Algorithm 1).

The primary policy is the multi-objective one: build the non-dominated
set of cancellable tasks by their per-resource gain vectors, then pick
the task with the highest contention-weighted scalarized gain.  Two
ablation baselines from §5.4 are also provided.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .estimator import OverloadAssessment, ResourceReport, TaskReport
from .task import CancellableTask
from .types import ResourceHandle


class CancellationPolicy:
    """Interface: pick the task to cancel from an assessment."""

    name = "abstract"

    #: Whether the estimator should compute future gains (True) or current
    #: usage (False) when preparing the assessment for this policy.
    uses_future_gain = True

    def select(
        self, assessment: OverloadAssessment
    ) -> Optional[Tuple[CancellableTask, float]]:
        """Returns (task, score) or None if no candidate exists."""
        raise NotImplementedError


def dominates(a: TaskReport, b: TaskReport, resources: List[ResourceHandle]) -> bool:
    """True if ``a`` dominates ``b``: >= on every resource, > on one."""
    strictly_better = False
    for resource in resources:
        ga, gb = a.gain(resource), b.gain(resource)
        if ga < gb:
            return False
        if ga > gb:
            strictly_better = True
    return strictly_better


def non_dominated_set(
    candidates: List[TaskReport], resources: List[ResourceHandle]
) -> List[TaskReport]:
    """Lines 2-10 of Algorithm 1: tasks not dominated by any other."""
    result = []
    for a in candidates:
        dominated = False
        for b in candidates:
            if b is a:
                continue
            if dominates(b, a, resources):
                dominated = True
                break
        if not dominated:
            result.append(a)
    return result


def _cancellable_candidates(
    assessment: OverloadAssessment, min_age: float
) -> List[TaskReport]:
    """Tasks eligible for cancellation (registered, alive, fairness)."""
    return [
        t
        for t in assessment.tasks
        if t.task.cancellable and t.task.age >= min_age
    ]


class MultiObjectivePolicy(CancellationPolicy):
    """Non-dominated set + contention-weighted scalarization (Alg 1)."""

    name = "multi-objective"
    uses_future_gain = True

    def __init__(self, min_age: float = 0.0) -> None:
        self.min_age = min_age

    def select(
        self, assessment: OverloadAssessment
    ) -> Optional[Tuple[CancellableTask, float]]:
        candidates = _cancellable_candidates(assessment, self.min_age)
        if not candidates:
            return None
        resources = [r.resource for r in assessment.resources]
        weights: Dict[ResourceHandle, float] = {
            r.resource: r.contention_norm for r in assessment.resources
        }
        dominators = non_dominated_set(candidates, resources)
        best: Optional[Tuple[CancellableTask, float]] = None
        # Lines 12-20 of Algorithm 1: scalarize gains by contention level.
        for report in dominators:
            total_gain = sum(
                weights.get(resource, 0.0) * gain
                for resource, gain in report.gains.items()
            )
            if total_gain <= 0.0:
                continue
            if best is None or total_gain > best[1]:
                best = (report.task, total_gain)
        return best


class GreedyHeuristicPolicy(CancellationPolicy):
    """Fig 13 baseline 1: max gain on the single most contended resource."""

    name = "greedy-heuristic"
    uses_future_gain = True

    def __init__(self, min_age: float = 0.0) -> None:
        self.min_age = min_age

    def select(
        self, assessment: OverloadAssessment
    ) -> Optional[Tuple[CancellableTask, float]]:
        candidates = _cancellable_candidates(assessment, self.min_age)
        if not candidates:
            return None
        hottest = assessment.most_contended()
        if hottest is None:
            return None
        best: Optional[Tuple[CancellableTask, float]] = None
        for report in candidates:
            gain = report.gain(hottest.resource)
            if gain <= 0.0:
                continue
            if best is None or gain > best[1]:
                best = (report.task, gain)
        return best


class CurrentUsagePolicy(MultiObjectivePolicy):
    """Fig 13 baseline 2: multi-objective over *current* usage.

    Identical selection logic, but the estimator feeds it current resource
    usage instead of predicted future gain -- biasing it toward nearly
    finished long tasks (the failure mode §3.4 describes).
    """

    name = "current-usage"
    uses_future_gain = False
