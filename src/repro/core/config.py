"""Configuration for the ATROPOS controller."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class AtroposConfig:
    """Tunables for detection, estimation, policy, and cancellation.

    Defaults follow the paper's described behaviour: detection piggybacks
    on a Breakwater-style latency/throughput monitor (§3.3), cancellations
    are rate-limited by a small cooldown (§5.3), re-execution waits for
    sustained resource availability (§4), and tracing runs in a cheap
    coarse mode until overload is suspected (§3.2).
    """

    #: Latency SLO for requests, in seconds.  Detection triggers when the
    #: windowed p99 exceeds ``slo_latency * slo_slack``.
    slo_latency: float = 0.1
    #: Multiplicative tolerance on the SLO before reacting (a 20% latency
    #: increase tolerance is the paper's default in §5.3).
    slo_slack: float = 1.2
    #: Period of the overload-detection loop, seconds.
    detection_period: float = 0.05
    #: Horizon of the completion window the detector inspects, seconds.
    detection_window: float = 1.0
    #: Latency percentile the detector watches.
    latency_percentile: float = 99.0
    #: Throughput growth (fractional) below which throughput is "flat".
    flat_throughput_margin: float = 0.10
    #: Minimum completions in a window before latency stats are trusted.
    min_window_samples: int = 10

    #: Normalized contention level above which a resource counts as
    #: overloaded (fraction of execution time lost to the resource).
    contention_threshold: float = 0.25
    #: Minimum task age before it may be cancelled, seconds (don't shoot
    #: a request that just started).
    min_cancel_age: float = 0.01
    #: Resource overload additionally requires a *concentrated* culprit.
    #: For time-typed resources (lock/queue/CPU), a task qualifies when
    #: its expected future hold alone exceeds ``culprit_gain_slo_multiple
    #: * slo_latency`` -- a single request planning to keep the resource
    #: longer than the whole latency budget is a monopolist by
    #: definition.  Uniform sub-SLO gains mean the slowdown is aggregate
    #: demand (regular overload, §3.3), where cancelling any one request
    #: would be indiscriminate victim dropping.
    culprit_gain_slo_multiple: float = 1.5
    #: For quantity-typed resources (memory pages / IO bytes), gains are
    #: not SLO-comparable; concentration uses the max/median skew of
    #: positive gains instead.
    gain_skew_threshold: float = 8.0

    #: Minimum interval between consecutive cancellations, seconds (§5.3:
    #: the aggressiveness/recovery trade-off behind cases c3 and c12).
    cancel_cooldown: float = 0.05

    #: Re-execution: resource availability must hold this long before a
    #: cancelled request is retried.
    reexec_stability_window: float = 0.5
    #: Re-execution: polling period while waiting for availability.
    reexec_check_period: float = 0.1
    #: A cancelled request is dropped once its total sojourn exceeds
    #: ``slo_latency * reexec_slo_multiple`` (it can no longer meet its
    #: SLO, §4).
    reexec_slo_multiple: float = 10.0
    #: Minimum deferral before a cancelled background task is reconsidered
    #: for re-execution, seconds.  Mirrors real systems' retry naptimes
    #: (e.g. autovacuum_naptime): a cancelled maintenance task should not
    #: re-enter the moment its own absence makes the system look calm.
    background_reexec_delay: float = 10.0
    #: Background tasks have no SLO; after the deferral they are
    #: force-retried once they have waited at most this much longer.
    background_max_wait: float = 30.0

    #: Simulated cost of one traced event in coarse (sampled-timestamp)
    #: mode, seconds.  Models the rdtsc-amortization of §3.2; sized so a
    #: handful of traced events per request costs well under 1% of a
    #: millisecond-scale operation (the paper's 0.59% average).
    coarse_trace_cost: float = 4e-6
    #: Simulated cost of one traced event in fine (per-event timestamp)
    #: mode, seconds (the paper's ~7% average under overload).
    fine_trace_cost: float = 5e-5
    #: Timestamp sampling interval in coarse mode, seconds.
    timestamp_sample_interval: float = 0.01

    #: Enable the opt-in thread-level (unsafe) cancellation fallback for
    #: tasks with no application initiator (§3.6; used for Apache/PHP).
    allow_thread_level_cancel: bool = False

    #: Disable cancellation actions entirely (used by the Fig 14 overhead
    #: experiment, which measures tracing + decision cost in isolation).
    cancellation_enabled: bool = True

    #: Mitigation lever applied on a resource-overload verdict
    #: (:mod:`repro.core.levers`): ``"cancel"`` (targeted task
    #: cancellation -- the paper's action and the default, byte-identical
    #: to the pre-lever controller), ``"lock_reshape"`` (Malthusian
    #: lock-queue passivation; no work lost), or ``"composite"``
    #: (audited per-decision choice between the two).
    lever: str = "cancel"

    #: Per-resource overrides of the contention threshold.
    contention_threshold_overrides: Dict[str, float] = field(
        default_factory=dict
    )

    #: Opt-in health-driven adaptive thresholds: the controller consumes
    #: its own health-event stream (detector-flapping, p99-ceiling) and
    #: moves the *live* detection window / tail trigger between windows.
    #: Off by default; fixed-threshold runs are bit-identical to the
    #: pre-adaptive controller.
    adaptive_thresholds: bool = False
    #: Multiplier applied to the live detection window each window in
    #: which detector-flapping fires (a noisy trigger wants more
    #: evidence).
    adapt_window_widen_factor: float = 1.5
    #: Cap on the widened window, as a multiple of ``detection_window``.
    adapt_max_window_multiple: float = 4.0
    #: Subtracted from the live ``slo_slack`` after sustained p99-ceiling
    #: violations (tighten the tail trigger; react earlier).
    adapt_slack_tighten_step: float = 0.05
    #: Floor of the live ``slo_slack`` (never trigger below the SLO
    #: itself).
    adapt_min_slack: float = 1.0
    #: Consecutive p99-ceiling windows required before tightening.
    adapt_p99_sustain: int = 3
    #: Consecutive healthy windows before one recovery step back toward
    #: the configured baselines.
    adapt_recovery_windows: int = 20

    #: History-mined threshold schedule (``repro.regress.schedule``):
    #: time-ordered ``{"time", "param", "value"}`` entries applied by the
    #: adaptive policy when their time comes, as audited
    #: ``DecisionKind.ADAPT`` moves.  ``param`` is ``detection_window``
    #: or ``slo_slack``.  Requires ``adaptive_thresholds=True`` (the
    #: schedule rides the adaptation stage of the pipeline).
    history_schedule: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject nonsensical configurations at construction time.

        A zero detection window or negative SLO used to surface as NaN
        percentiles or a never-firing detector deep inside a run; fail
        fast with every violated constraint named instead.
        """
        problems = []

        def positive(name):
            if getattr(self, name) <= 0:
                problems.append(
                    f"{name} must be > 0 (got {getattr(self, name)!r})"
                )

        def non_negative(name):
            if getattr(self, name) < 0:
                problems.append(
                    f"{name} must be >= 0 (got {getattr(self, name)!r})"
                )

        for name in (
            "slo_latency",
            "slo_slack",
            "detection_period",
            "detection_window",
            "contention_threshold",
            "cancel_cooldown",
            "reexec_check_period",
            "timestamp_sample_interval",
            "adapt_min_slack",
        ):
            positive(name)
        for name in (
            "flat_throughput_margin",
            "min_cancel_age",
            "culprit_gain_slo_multiple",
            "gain_skew_threshold",
            "reexec_stability_window",
            "reexec_slo_multiple",
            "background_reexec_delay",
            "background_max_wait",
            "coarse_trace_cost",
            "fine_trace_cost",
            "adapt_slack_tighten_step",
        ):
            non_negative(name)
        if not 0 < self.latency_percentile <= 100:
            problems.append(
                "latency_percentile must be in (0, 100] "
                f"(got {self.latency_percentile!r})"
            )
        if self.min_window_samples < 1:
            problems.append(
                "min_window_samples must be >= 1 "
                f"(got {self.min_window_samples!r})"
            )
        for name in ("adapt_window_widen_factor", "adapt_max_window_multiple"):
            if getattr(self, name) < 1.0:
                problems.append(
                    f"{name} must be >= 1 (got {getattr(self, name)!r})"
                )
        for name in ("adapt_p99_sustain", "adapt_recovery_windows"):
            if getattr(self, name) < 1:
                problems.append(
                    f"{name} must be >= 1 (got {getattr(self, name)!r})"
                )
        for resource, value in sorted(
            self.contention_threshold_overrides.items()
        ):
            if value <= 0:
                problems.append(
                    f"contention_threshold_overrides[{resource!r}] must be "
                    f"> 0 (got {value!r})"
                )
        from .levers import LEVER_NAMES

        if self.lever not in LEVER_NAMES:
            problems.append(
                f"lever must be one of {', '.join(LEVER_NAMES)} "
                f"(got {self.lever!r})"
            )
        if self.history_schedule and not self.adaptive_thresholds:
            problems.append(
                "history_schedule requires adaptive_thresholds=True "
                "(schedules are applied by the adaptation stage)"
            )
        for i, entry in enumerate(self.history_schedule):
            if not isinstance(entry, dict):
                problems.append(
                    f"history_schedule[{i}] must be a dict "
                    f"(got {entry!r})"
                )
                continue
            param = entry.get("param")
            if param not in ("detection_window", "slo_slack"):
                problems.append(
                    f"history_schedule[{i}] param must be "
                    "'detection_window' or 'slo_slack' "
                    f"(got {param!r})"
                )
            time = entry.get("time")
            if not isinstance(time, (int, float)) or time < 0:
                problems.append(
                    f"history_schedule[{i}] time must be >= 0 "
                    f"(got {time!r})"
                )
            value = entry.get("value")
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(
                    f"history_schedule[{i}] value must be > 0 "
                    f"(got {value!r})"
                )
        if problems:
            raise ValueError(
                "invalid AtroposConfig: " + "; ".join(problems)
            )

    def threshold_for(self, resource_name: str) -> float:
        return self.contention_threshold_overrides.get(
            resource_name, self.contention_threshold
        )
