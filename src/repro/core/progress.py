"""Task progress models for future-resource-gain estimation.

The paper (§3.4) uses the GetNext model [Graefe '93]: progress of an
operator is ``k / N`` where ``k`` is rows already processed and ``N`` is
the optimizer's estimate of total rows.  Applications with such counters
(databases, search engines) report them; others can supply a custom
progress callback or fall back to a time-based estimate.
"""

from __future__ import annotations

from typing import Callable, Optional

#: Progress is clamped into this range so the future-gain multiplier
#: ``(1 - p) / p`` stays finite and a just-started task does not get an
#: unbounded score.
MIN_PROGRESS = 0.02
MAX_PROGRESS = 0.999


def clamp_progress(p: float) -> float:
    """Clamp a raw progress value into the usable range."""
    return max(MIN_PROGRESS, min(MAX_PROGRESS, p))


def future_gain_multiplier(progress: float) -> float:
    """The paper's remaining-workload factor ``(1 - p) / p``.

    A task at 10% progress gets multiplier 9 (lots of demand ahead); a task
    at 90% gets 1/9 (cancelling it frees little future load).
    """
    p = clamp_progress(progress)
    return (1.0 - p) / p


class ProgressModel:
    """Base progress model: subclasses return a value in (0, 1]."""

    def value(self, now: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class GetNextProgress(ProgressModel):
    """GetNext model: ``k / N`` rows processed over rows expected.

    Mirrors MySQL's ``rows_examined`` / ``estimatedRows`` counters the
    paper reads per request.
    """

    def __init__(self, total_rows: float) -> None:
        if total_rows <= 0:
            raise ValueError("total_rows must be positive")
        self.total_rows = total_rows
        self.rows_processed = 0.0

    def advance(self, rows: float) -> None:
        """Record ``rows`` more rows processed."""
        if rows < 0:
            raise ValueError("rows must be non-negative")
        self.rows_processed = min(self.total_rows, self.rows_processed + rows)

    def set_total(self, total_rows: float) -> None:
        """Revise the optimizer's estimate mid-flight."""
        if total_rows <= 0:
            raise ValueError("total_rows must be positive")
        self.total_rows = total_rows

    def value(self, now: float) -> float:
        return clamp_progress(self.rows_processed / self.total_rows)


class TimeBasedProgress(ProgressModel):
    """Fallback for tasks without row counters: elapsed over expected."""

    def __init__(self, started_at: float, expected_duration: float) -> None:
        if expected_duration <= 0:
            raise ValueError("expected_duration must be positive")
        self.started_at = started_at
        self.expected_duration = expected_duration

    def value(self, now: float) -> float:
        elapsed = max(0.0, now - self.started_at)
        return clamp_progress(elapsed / self.expected_duration)


class CallbackProgress(ProgressModel):
    """Developer-supplied progress callback (the paper's explicit API)."""

    def __init__(self, callback: Callable[[], float]) -> None:
        self.callback = callback

    def value(self, now: float) -> float:
        return clamp_progress(self.callback())


class UnknownProgress(ProgressModel):
    """No information: assume the task is halfway (neutral multiplier 1)."""

    def value(self, now: float) -> float:
        return 0.5
