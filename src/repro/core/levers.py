"""Mitigation levers: what the pipeline *does* about a resource overload.

The paper's thesis is targeted task cancellation, but cancellation is
one point in a larger design space of mitigations.  This module
generalizes the ATROPOS action stage into a **lever registry** so the
same detect -> classify -> blame machinery can drive different
mitigations and ``repro ablate --levers`` can contrast them:

* :class:`CancelLever` -- the paper's action (and the default): cancel
  the highest-gain culprit task.  Byte-identical to the historical
  ``CancellationAction`` behaviour.
* :class:`LockScheduleLever` -- a Malthusian-Locks-style resource-level
  mitigation (arXiv 1511.06035): instead of killing the culprit, *park*
  its queued lock waiters off the dispatch path
  (:meth:`~repro.sim.resources.lock.SyncLock.reshape_queue`) so victims
  overtake at the culprit's chunk boundaries; the lock itself readmits
  parked waiters serially whenever it goes fully idle.  No work is lost
  -- the culprit finishes late rather than never.
* :class:`CompositeLever` -- audited per-decision choice: reshape when
  the culprit is a lock with parkable culprit-class waiters, cancel
  otherwise.  Every choice is a :attr:`DecisionKind.LEVER` record.

All levers share :class:`MitigationLever`'s skeleton, which carries the
detection record, estimator assessment, classification, and decision
audit exactly as the historical code did; only the post-classification
*apply* step differs.  Audit verdicts gain two lever-specific values:
``"lock-reshaped"`` (waiters parked) and ``"lever-noop"`` (the lever
found nothing actionable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from .decision_log import (
    CandidateEvidence,
    DecisionAudit,
    DecisionKind,
    DetectorSignal,
    ResourceEvidence,
)
from .pipeline import ActionPolicy
from .types import ResourceType

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.resources.lock import SyncLock
    from .atropos import Atropos


class MitigationLever(ActionPolicy):
    """The per-window decision: classify, pick a culprit, mitigate (§3.3-3.5).

    Mutates the owning controller's counters and decision log so the
    controller's public diagnostics (``regular_overloads``,
    ``last_assessment``, ``cancels_issued``, ``explain()``) keep their
    historical meaning.  Subclasses implement :meth:`_apply` (the
    mitigation proper) and may override :meth:`_on_calm` (invoked every
    window the detector reports no potential overload).
    """

    name = "cancellation"
    #: Registry key; also stamped on lever decision records and audits.
    lever_name = "lever"

    def __init__(self, controller: "Atropos") -> None:
        self.controller = controller
        #: Mitigations applied by this lever (cancels or reshapes).
        self.actions_total = 0

    def act(self, now: float, signals: Dict[str, Any]) -> None:
        if signals.get("potential_overload"):
            self._handle_potential_overload(
                signals.get("oldest_inflight_age", 0.0)
            )
        else:
            self.controller._regular_overload_active = False
            self._on_calm(now)

    def _on_calm(self, now: float) -> None:
        """Hook for levers with state to unwind when overload subsides."""

    def telemetry_snapshot(self) -> Dict[str, Any]:
        return {"name": self.lever_name, "actions_total": self.actions_total}

    def _handle_potential_overload(self, oldest_age: float = 0.0) -> None:
        c = self.controller
        now = c.env.now
        sample = c.detector.history[-1] if c.detector.history else None
        c.decision_log.record(
            now,
            DecisionKind.DETECTION,
            "potential overload",
            tail_p99=round(sample.tail_latency, 4) if sample else None,
            throughput=round(sample.throughput, 1) if sample else None,
        )
        assessment = c.estimator.assess(
            resources=list(c.resources.values()),
            tasks=c.live_tasks(),
            use_future_gain=c.policy.uses_future_gain,
        )
        c.last_assessment = assessment
        audit = self._start_audit(now, sample, oldest_age, assessment)
        hottest = assessment.most_contended()
        if not assessment.is_resource_overload:
            # Regular (demand) overload: out of scope for cancellation;
            # delegated to the conventional fallback controller (§3.3).
            c.regular_overloads += 1
            c._regular_overload_active = True
            c.decision_log.record(
                now,
                DecisionKind.CLASSIFICATION,
                "regular (demand) overload -> fallback",
                hottest=str(hottest.resource) if hottest else None,
                contention=round(hottest.contention_norm, 3)
                if hottest
                else None,
            )
            audit.verdict = "regular-overload"
            self._finish_audit(audit)
            return
        c._regular_overload_active = False
        culprit_resource = next(
            (r for r in assessment.resources if r.overloaded and r.concentrated),
            hottest,
        )
        audit.culprit_resource = (
            culprit_resource.resource.name if culprit_resource else None
        )
        c.decision_log.record(
            now,
            DecisionKind.CLASSIFICATION,
            "resource overload",
            resource=str(culprit_resource.resource),
            contention=round(culprit_resource.contention_norm, 3),
            gain_skew=round(culprit_resource.gain_skew, 1)
            if culprit_resource.gain_skew != float("inf")
            else "inf",
        )
        self._apply(now, assessment, hottest, culprit_resource, audit)

    def _apply(self, now, assessment, hottest, culprit_resource, audit):
        """Apply this lever's mitigation; must finish the audit."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # The cancellation mitigation (shared: CancelLever + CompositeLever)
    # ------------------------------------------------------------------
    def _apply_cancel(self, now, assessment, hottest, audit) -> None:
        c = self.controller
        selection = c.policy.select(assessment)
        if selection is None:
            c.decision_log.record(
                now, DecisionKind.CANCEL_BLOCKED, "no cancellable candidate"
            )
            audit.verdict = "no-candidate"
            self._finish_audit(audit)
            return
        task, score = selection
        for candidate in audit.candidates:
            if candidate.task_key == task.key:
                candidate.selected = True
                candidate.score = score
        cancelled = c.cancellation.cancel(
            task,
            resource=hottest.resource if hottest else None,
            score=score,
        )
        if cancelled:
            c.cancels_issued += 1
            self.actions_total += 1
            c.decision_log.record(
                now,
                DecisionKind.CANCELLATION,
                f"cancelled {task.op_name!r}",
                key=task.key,
                score=round(score, 2),
                progress=round(task.progress(), 2),
            )
            audit.verdict = "cancelled"
            audit.cancelled_task_key = task.key
            audit.cancelled_op_name = task.op_name
        else:
            c.decision_log.record(
                now,
                DecisionKind.CANCEL_BLOCKED,
                f"cancel of {task.op_name!r} blocked",
                in_cooldown=c.cancellation.in_cooldown,
            )
            audit.verdict = "cancel-blocked"
            audit.blocked_reason = (
                "cooldown" if c.cancellation.in_cooldown else "task-state"
            )
        self._finish_audit(audit)

    # ------------------------------------------------------------------
    # Decision-audit trail
    # ------------------------------------------------------------------
    def _start_audit(
        self, now: float, sample, oldest_age: float, assessment
    ) -> DecisionAudit:
        """Snapshot the evidence behind this detection cycle."""
        c = self.controller
        weights = {
            r.resource: r.contention_norm for r in assessment.resources
        }
        candidates = []
        for report in assessment.tasks:
            task = report.task
            gains = {
                resource.name: gain
                for resource, gain in sorted(
                    report.gains.items(), key=lambda item: item[0].name
                )
            }
            # The contention-weighted scalarization every policy's ranking
            # evidence is reported in (§3.5), whether or not the active
            # policy ultimately used it.
            score = sum(
                weights.get(resource, 0.0) * gain
                for resource, gain in report.gains.items()
            )
            candidates.append(
                CandidateEvidence(
                    task_key=task.key,
                    op_name=task.op_name,
                    client_id=task.client_id,
                    kind=task.kind.value,
                    age=round(task.age, 6),
                    progress=round(report.progress, 6),
                    cancellable=task.cancellable,
                    gains={k: round(v, 9) for k, v in gains.items()},
                    score=round(score, 9),
                )
            )
        candidates.sort(key=lambda c: (-(c.score or 0.0), str(c.task_key)))
        return DecisionAudit(
            time=now,
            detector=DetectorSignal(
                tail_latency=sample.tail_latency if sample else None,
                throughput=sample.throughput if sample else None,
                samples=sample.samples if sample else None,
                oldest_inflight_age=oldest_age,
            ),
            resources=[
                ResourceEvidence(
                    resource=r.resource.name,
                    rtype=r.resource.rtype.value,
                    contention_raw=round(r.contention_raw, 9),
                    contention_norm=round(r.contention_norm, 9),
                    threshold=c.config.threshold_for(r.resource.name),
                    overloaded=r.overloaded,
                    concentrated=r.concentrated,
                    gain_skew=r.gain_skew
                    if r.gain_skew != float("inf")
                    else -1.0,
                )
                for r in assessment.resources
            ],
            candidates=candidates,
            verdict="pending",
        )

    def _finish_audit(self, audit: DecisionAudit) -> None:
        """Record the audit and mirror it into the run's tracer."""
        c = self.controller
        c.decision_log.record_audit(audit)
        tracer = c.env.tracer
        if tracer.enabled:
            payload = audit.to_payload()
            tracer.audit(payload)
            tracer.instant(
                audit.time,
                "decision",
                f"{audit.verdict}"
                + (
                    f" {audit.cancelled_op_name}#{audit.cancelled_task_key}"
                    if audit.verdict == "cancelled"
                    else ""
                ),
                "atropos:decisions",
                audit=payload,
            )


class CancelLever(MitigationLever):
    """Targeted task cancellation -- the paper's mitigation, the default.

    Behaviour (decision-log records, audit contents, cancellation
    manager interaction) is byte-identical to the historical
    ``CancellationAction``; fig9/fig13 regression-gate this.
    """

    name = "cancellation"
    lever_name = "cancel"

    def _apply(self, now, assessment, hottest, culprit_resource, audit):
        self._apply_cancel(now, assessment, hottest, audit)


class LockScheduleLever(MitigationLever):
    """Malthusian lock-queue reshaping: park the culprit's waiters.

    On a resource-overload verdict, identify the culprit op-class (the
    same ranking evidence cancellation uses) and passivate its queued
    waiters on the culprit lock(s).  Victims overtake at the culprit's
    chunk boundaries; parked waiters are readmitted by the lock's own
    idle trickle -- one per idle moment, the Malthusian promotion rule
    -- so the storm drains serially instead of re-forming its convoy
    (an eager readmit-all on the first calm window would oscillate:
    park, calm, re-convoy, park, ...).  The culprit tasks are never
    cancelled -- their work completes late instead of being lost.
    """

    name = "lock-reshape"
    lever_name = "lock_reshape"

    def __init__(self, controller: "Atropos") -> None:
        super().__init__(controller)
        #: All SyncLocks discovered on the bound application.
        self._locks: List["SyncLock"] = []
        #: Lifetime count of waiters this lever parked.
        self.parked_total = 0

    def bind(self, app) -> None:
        from ..sim.resources.lock import SyncLock

        locks: List["SyncLock"] = []
        for value in vars(app).values():
            if isinstance(value, SyncLock):
                locks.append(value)
            elif isinstance(value, (list, tuple)):
                locks.extend(v for v in value if isinstance(v, SyncLock))
        self._locks = locks

    def telemetry_snapshot(self) -> Dict[str, Any]:
        snap = super().telemetry_snapshot()
        snap["parked_total"] = self.parked_total
        # Readmission happens in the locks (idle trickle), not here.
        snap["reactivated_total"] = sum(
            lock.waiters_reactivated_total for lock in self._locks
        )
        return snap

    # -- culprit identification ---------------------------------------
    def _culprit_op(
        self, assessment, audit
    ) -> Tuple[Optional[str], Optional[Tuple[Any, float]]]:
        """The op-class to park: the policy's pick, else the top-ranked
        candidate (a non-cancellable culprit's waiters are still
        parkable -- that is the lever's whole advantage)."""
        selection = self.controller.policy.select(assessment)
        if selection is not None:
            task, score = selection
            for candidate in audit.candidates:
                if candidate.task_key == task.key:
                    candidate.selected = True
                    candidate.score = score
            return task.op_name, selection
        if audit.candidates:
            return audit.candidates[0].op_name, None
        return None, None

    def _locks_for(self, resource_name: str) -> List["SyncLock"]:
        prefix = resource_name + "."
        return [
            lock
            for lock in self._locks
            if lock.name == resource_name or lock.name.startswith(prefix)
        ]

    def _parkable(self, culprit_resource, op_name: str) -> int:
        """How many culprit-class waiters a reshape would park right now."""
        count = 0
        for lock in self._locks_for(culprit_resource.resource.name):
            for grant in lock._waiters:
                if getattr(grant.owner, "op_name", None) == op_name:
                    count += 1
        return count

    # -- the mitigation ------------------------------------------------
    def _apply(self, now, assessment, hottest, culprit_resource, audit):
        op_name, _selection = self._culprit_op(assessment, audit)
        self._apply_reshape(now, culprit_resource, op_name, audit)

    def _apply_reshape(self, now, culprit_resource, op_name, audit) -> None:
        c = self.controller
        audit.lever = self.lever_name
        if op_name is None or culprit_resource is None:
            c.decision_log.record(
                now, DecisionKind.LEVER, "no culprit op-class to park",
                lever=self.lever_name,
            )
            audit.verdict = "lever-noop"
            self._finish_audit(audit)
            return
        parked = 0
        for lock in self._locks_for(culprit_resource.resource.name):
            parked += lock.reshape_queue(
                lambda grant: getattr(grant.owner, "op_name", None)
                == op_name
            )
        if parked:
            self.actions_total += 1
            self.parked_total += parked
            c.decision_log.record(
                now,
                DecisionKind.LEVER,
                f"parked {parked} {op_name!r} waiter(s)",
                lever=self.lever_name,
                resource=culprit_resource.resource.name,
            )
            audit.verdict = "lock-reshaped"
            audit.cancelled_op_name = None
        else:
            c.decision_log.record(
                now,
                DecisionKind.LEVER,
                f"no parkable {op_name!r} waiters",
                lever=self.lever_name,
                resource=culprit_resource.resource.name,
            )
            audit.verdict = "lever-noop"
        self._finish_audit(audit)

    # -- unwind --------------------------------------------------------
    # Deliberately no _on_calm reactivation: parked waiters drain
    # through the lock's idle trickle (one per idle moment), which
    # self-limits -- a readmitted chunk-wise culprit keeps the lock busy
    # and thereby blocks further promotions until it finishes.  A lock
    # saturated by victim traffic keeps its parked storm parked; that is
    # the Malthusian trade, and admitting the storm would only make the
    # saturation worse.


class CompositeLever(LockScheduleLever):
    """Audited per-decision lever choice: reshape when it can act, else cancel.

    The choice rule is deliberately simple and legible: if the culprit
    resource is a lock and the culprit op-class has parkable waiters
    right now, reshape the queue; otherwise fall back to targeted
    cancellation.  Each choice is recorded as a
    :attr:`DecisionKind.LEVER` event before the chosen mitigation runs.
    """

    name = "composite"
    lever_name = "composite"

    def _apply(self, now, assessment, hottest, culprit_resource, audit):
        c = self.controller
        op_name, _selection = self._culprit_op(assessment, audit)
        use_reshape = (
            op_name is not None
            and culprit_resource is not None
            and culprit_resource.resource.rtype is ResourceType.LOCK
            and self._parkable(culprit_resource, op_name) > 0
        )
        chosen = "lock_reshape" if use_reshape else "cancel"
        c.decision_log.record(
            now,
            DecisionKind.LEVER,
            f"lever choice -> {chosen}",
            lever=self.lever_name,
            resource=culprit_resource.resource.name
            if culprit_resource
            else None,
            op=op_name,
        )
        audit.lever = chosen
        if use_reshape:
            self._apply_reshape(now, culprit_resource, op_name, audit)
        else:
            self._apply_cancel(now, assessment, hottest, audit)


#: Registry: lever name -> lever class (insertion order is report order).
LEVERS: Dict[str, type] = {
    "cancel": CancelLever,
    "lock_reshape": LockScheduleLever,
    "composite": CompositeLever,
}

#: The valid ``AtroposConfig.lever`` / ``RunSpec.lever`` values.
LEVER_NAMES: Tuple[str, ...] = tuple(LEVERS)


def resolve_lever(name: str) -> type:
    """Look up a lever class by registry name.

    Raises ``KeyError`` naming the known levers for an unknown name.
    """
    try:
        return LEVERS[name]
    except KeyError:
        raise KeyError(
            f"unknown lever {name!r}; known levers: {', '.join(LEVERS)}"
        ) from None
