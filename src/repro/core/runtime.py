"""The ATROPOS runtime manager (paper §3.2).

Attributes resource usage to cancellable tasks via the three tracing APIs
and manages the two-mode timestamping scheme: coarse sampled timestamps
under normal operation, per-event timestamps while overload is suspected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from .config import AtroposConfig
from .ledger import UsageLedger, UsageStats
from .task import CancellableTask
from .types import ResourceHandle

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


class ActivityTracker:
    """Tracks aggregate task-execution seconds per detection window.

    The estimator normalizes contention by the execution time spent in the
    window (paper §3.5: C_r = D_r / T_exec); this tracker integrates the
    number of live tasks over time.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._active = 0
        self._accum = 0.0
        self._last_change = env.now

    def _settle(self) -> None:
        now = self.env.now
        self._accum += self._active * (now - self._last_change)
        self._last_change = now

    def task_started(self) -> None:
        self._settle()
        self._active += 1

    def task_finished(self) -> None:
        self._settle()
        self._active = max(0, self._active - 1)

    @property
    def active(self) -> int:
        return self._active

    def window_task_seconds(self) -> float:
        self._settle()
        return self._accum

    def roll(self) -> None:
        self._settle()
        self._accum = 0.0


class RuntimeManager:
    """Tracks per-task resource usage for the ATROPOS controller."""

    def __init__(self, env: "Environment", config: AtroposConfig) -> None:
        self.env = env
        self.config = config
        self.ledger = UsageLedger()
        self.activity = ActivityTracker(env)
        #: Fine-grained timestamping while overload is suspected (§3.2).
        self.fine_mode = False
        #: Total traced events (for overhead accounting/reporting).
        self.events_traced = 0
        self._last_sampled_stamp = env.now

    # ------------------------------------------------------------------
    # Timestamping
    # ------------------------------------------------------------------
    def timestamp(self) -> float:
        """Current trace timestamp.

        In coarse mode, timestamps are quantized to the sampling interval
        (all events within an interval share one timestamp); in fine mode
        every event reads the clock.
        """
        now = self.env.now
        if self.fine_mode:
            return now
        interval = self.config.timestamp_sample_interval
        if now - self._last_sampled_stamp >= interval:
            self._last_sampled_stamp = now - (now % interval)
        return self._last_sampled_stamp

    def set_fine_mode(self, enabled: bool) -> None:
        self.fine_mode = enabled

    def event_cost(self) -> float:
        """Simulated per-event tracing overhead for the current mode."""
        if self.fine_mode:
            return self.config.fine_trace_cost
        return self.config.coarse_trace_cost

    # ------------------------------------------------------------------
    # Tracing entry points
    # ------------------------------------------------------------------
    def record_get(
        self, task: CancellableTask, resource: ResourceHandle, amount: float
    ) -> None:
        self.events_traced += 1
        self.ledger.record_get(id(task), resource, amount, self.timestamp())

    def record_free(
        self, task: CancellableTask, resource: ResourceHandle, amount: float
    ) -> None:
        self.events_traced += 1
        self.ledger.record_free(id(task), resource, amount, self.timestamp())

    def record_slow_by(
        self,
        task: CancellableTask,
        resource: ResourceHandle,
        delay: float,
        events: float = 1.0,
    ) -> None:
        self.events_traced += 1
        self.ledger.record_slow_by(id(task), resource, delay, events)

    def record_wait_start(
        self, task: CancellableTask, resource: ResourceHandle
    ) -> None:
        self.events_traced += 1
        self.ledger.record_wait_start(id(task), resource, self.env.now)

    def record_wait_end(
        self, task: CancellableTask, resource: ResourceHandle
    ) -> float:
        self.events_traced += 1
        return self.ledger.record_wait_end(id(task), resource, self.env.now)

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def task_started(self, task: CancellableTask) -> None:
        self.activity.task_started()

    def task_finished(self, task: CancellableTask) -> None:
        self.activity.task_finished()
        self.ledger.forget_task(id(task))

    # ------------------------------------------------------------------
    # Window management
    # ------------------------------------------------------------------
    def roll_window(self) -> None:
        self.ledger.roll_window()
        self.activity.roll()
