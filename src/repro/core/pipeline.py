"""The composable control-plane pipeline: signals -> adaptation -> action.

Every overload controller in this repo -- ATROPOS and all six baselines
-- runs the same periodic loop: *observe* some signals about the system,
optionally *adapt* its own thresholds, then *act* (cancel, drop,
throttle, resize an admission pool).  This module makes that loop an
explicit pipeline of three pluggable stage kinds, composed by a
:class:`ControlPipeline` that owns the single monitor process:

* :class:`SignalSource` -- produces the window's observations into a
  shared signal map (detector samples, latency-window statistics,
  health events, blocking-delay scans).  Sources are sampled in list
  order, so a later source may consume what an earlier one produced
  (the health source reads the detector source's values).
* :class:`AdaptationPolicy` -- the slow, between-window control layer:
  adjusts live thresholds derived from the static config.  The default
  :class:`NoAdaptation` keeps every threshold fixed, which preserves the
  historical behaviour bit-for-bit.
* :class:`ActionPolicy` -- the fast per-window decision: blame +
  cancellation for ATROPOS, an AIMD rate/credit update for SEDA and
  Breakwater, victim drops for Protego, penalties for pBox, worker
  reservation (a bind-time action) for DARC.

The tick order is **sample -> adapt -> act -> roll**: an adaptation
reads the window that just closed and moves thresholds for the *next*
window, mirroring the bi-level designs of Autothrottle and DAGOR where
slow target tuning sits above the fast per-window controller.

None of the stage calls touches the event queue -- only the pipeline's
own ``timeout(period)`` does -- so restructuring a controller onto the
pipeline cannot perturb simulation scheduling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional

from ..sim.metrics import SlidingWindow

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord


class SignalSource:
    """One producer of per-window observations.

    Subclasses override :meth:`sample`; the completion feed and the
    end-of-tick :meth:`roll` hook are optional.
    """

    name = "signal"

    def observe_completion(self, record: "RequestRecord") -> None:
        """Feedback hook: a request reached a terminal state."""

    def sample(self, now: float, signals: Dict[str, Any]) -> None:
        """Write this window's observations into ``signals``.

        Sources run in pipeline order and share one map, so keys written
        by earlier sources are readable here.
        """
        raise NotImplementedError

    def roll(self, now: float) -> None:
        """End-of-tick bookkeeping (e.g. roll a usage ledger window)."""

    def telemetry_snapshot(self) -> Dict[str, Any]:
        """Scrape-friendly view of this source's latest state."""
        return {}


class AdaptationPolicy:
    """Between-window adjustment of live thresholds (the slow loop)."""

    name = "adaptation"

    def adapt(self, now: float, signals: Dict[str, Any]) -> None:
        raise NotImplementedError


class NoAdaptation(AdaptationPolicy):
    """Fixed thresholds: the default, and the historical behaviour."""

    name = "fixed"

    def adapt(self, now: float, signals: Dict[str, Any]) -> None:
        return None


class ActionPolicy:
    """The per-window control action (the fast loop)."""

    name = "action"

    def bind(self, app) -> None:
        """One-time configuration against the application (DARC)."""

    def act(self, now: float, signals: Dict[str, Any]) -> None:
        raise NotImplementedError


class ControlPipeline:
    """One periodic monitor process running sample -> adapt -> act -> roll.

    Args:
        env: simulation environment.
        period: seconds between ticks; ``None`` means the pipeline has no
            periodic loop at all (a bind-time-only controller like DARC).
        sources: signal sources, sampled in order each tick.
        adaptation: threshold adaptation stage (default: fixed).
        action: the control action stage (optional).
    """

    def __init__(
        self,
        env: "Environment",
        period: Optional[float],
        sources: Iterable[SignalSource] = (),
        adaptation: Optional[AdaptationPolicy] = None,
        action: Optional[ActionPolicy] = None,
    ) -> None:
        self.env = env
        self.period = period
        self.sources = list(sources)
        self.adaptation = adaptation or NoAdaptation()
        self.action = action
        #: The signal map produced by the most recent tick (telemetry).
        self.last_signals: Dict[str, Any] = {}
        self._started = False

    def bind(self, app) -> None:
        if self.action is not None:
            self.action.bind(app)

    def observe_completion(self, record: "RequestRecord") -> None:
        for source in self.sources:
            source.observe_completion(record)

    def start(self) -> None:
        """Launch the monitor process (idempotent; no-op without a period)."""
        if self._started or self.period is None:
            return
        self._started = True
        self.env.process(self._loop())

    def _loop(self):
        while True:
            yield self.env.timeout(self.period)
            self.tick()

    def tick(self) -> Dict[str, Any]:
        """Run one full pipeline pass at the current simulated time."""
        now = self.env.now
        signals: Dict[str, Any] = {}
        for source in self.sources:
            source.sample(now, signals)
        self.adaptation.adapt(now, signals)
        if self.action is not None:
            self.action.act(now, signals)
        for source in self.sources:
            source.roll(now)
        self.last_signals = signals
        return signals


class LatencyWindowSource(SignalSource):
    """Shared sliding-window completion statistics.

    The bookkeeping SEDA, Breakwater, and PARTIES each re-implemented:
    feed completed requests into a :class:`SlidingWindow` and expose the
    window's throughput, sample count, mean, and tail percentile as
    signals (``throughput``, ``samples``, ``mean_latency``,
    ``tail_latency``).
    """

    name = "latency-window"

    def __init__(
        self,
        env: "Environment",
        horizon: float = 1.0,
        percentile: float = 99,
    ) -> None:
        self.env = env
        self.percentile = percentile
        self.window = SlidingWindow(horizon=horizon)

    def observe_completion(self, record: "RequestRecord") -> None:
        if record.completed:
            self.window.observe(record.finish_time, record.latency)

    def sample(self, now: float, signals: Dict[str, Any]) -> None:
        signals["throughput"] = self.window.throughput(now)
        signals["samples"] = self.window.count(now)
        signals["mean_latency"] = self.window.mean_latency(now)
        signals["tail_latency"] = self.window.latency_percentile(
            now, self.percentile
        )

    def telemetry_snapshot(self) -> Dict[str, Any]:
        now = self.env.now
        return {
            "throughput": self.window.throughput(now),
            "samples": self.window.count(now),
            "tail_latency": self.window.latency_percentile(
                now, self.percentile
            ),
        }
