"""Shared types for the overload-control framework.

These mirror the paper's abstractions: the :class:`ResourceType` enum of
Figure 6b (plus the two "system" resource categories of Table 2), the
cancellable-task kinds, and the signals exchanged between a controller and
the instrumented application.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class ResourceType(enum.Enum):
    """Categories of application resources (paper Figure 6b + Table 2).

    LOCK, MEMORY and QUEUE are the paper's three application-resource
    classes; CPU and IO are the "system" resources of cases c8/c12, which
    the paper traces through OS facilities (cgroups) but feeds into the
    same estimator.
    """

    LOCK = "lock"
    MEMORY = "memory"
    QUEUE = "queue"
    CPU = "cpu"
    IO = "io"

    @property
    def is_system(self) -> bool:
        return self in (ResourceType.CPU, ResourceType.IO)


class TaskKind(enum.Enum):
    """What a cancellable task represents."""

    #: A user-issued request (has an SLO; re-executed after cancellation).
    REQUEST = "request"
    #: An internal background task (no SLO; bounded re-execution wait).
    BACKGROUND = "background"


@dataclass(frozen=True)
class ResourceHandle:
    """Identity of a registered application resource."""

    name: str
    rtype: ResourceType

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{self.rtype.value}]"


@dataclass
class CancelSignal:
    """Cause object delivered with the Interrupt when a task is cancelled.

    Attributes:
        reason: human-readable reason ("resource-overload", ...).
        resource: the dominant contended resource behind the decision.
        score: the policy's scalarized gain for the cancelled task.
        decided_at: simulated time of the decision.
    """

    reason: str = "resource-overload"
    resource: Optional[ResourceHandle] = None
    score: float = 0.0
    decided_at: float = 0.0
    details: Dict[str, Any] = field(default_factory=dict)


@dataclass
class DropSignal:
    """Interrupt cause used by controllers that drop *victim* requests
    mid-flight (Protego): the workload driver records the request as
    DROPPED without re-execution."""

    reason: str = "victim-drop"
    resource: Optional[ResourceHandle] = None
    decided_at: float = 0.0


class DropRequest(Exception):
    """Raised inside a request handler when the controller drops it.

    Used by admission-style controllers (Protego's victim dropping): the
    application checks ``controller.should_drop(task)`` at checkpoints and
    raises this to unwind; the workload driver records a DROPPED outcome.
    """

    def __init__(self, reason: str = "overload") -> None:
        super().__init__(reason)
        self.reason = reason
