"""Deterministic random-number utilities for simulations.

Every stochastic component takes an explicit :class:`Rng` so experiments are
reproducible bit-for-bit from a seed, and independent components can be given
independent streams (``rng.fork(name)``).
"""

from __future__ import annotations

import random
import zlib
from bisect import bisect
from itertools import accumulate
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


class Rng:
    """A seeded random stream with the distributions the models need."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, name: str) -> "Rng":
        """Derive an independent, deterministic child stream.

        The child's seed mixes the parent's seed with ``name``, so workload
        arrival processes, service-time draws, etc. do not perturb each other
        when one component draws more samples.  The mix uses a *stable*
        hash (crc32), not Python's per-process salted ``hash()``, so runs
        are reproducible across interpreter invocations.
        """
        child_seed = zlib.crc32(f"{self.seed}:{name}".encode()) & 0x7FFFFFFF
        return Rng(child_seed)

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def exponential(self, mean: float) -> float:
        """Exponential with the given *mean* (not rate)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def lognormal(self, median: float, sigma: float = 0.5) -> float:
        """Lognormal parameterized by its median (exp(mu))."""
        import math

        return self._random.lognormvariate(math.log(median), sigma)

    def pareto(self, minimum: float, alpha: float = 1.5, cap: Optional[float] = None) -> float:
        """Bounded Pareto -- heavy-tailed service times.

        Args:
            minimum: scale (smallest possible value).
            alpha: tail index; smaller is heavier.
            cap: optional upper bound to keep tails finite.
        """
        value = minimum * (self._random.paretovariate(alpha))
        if cap is not None:
            value = min(value, cap)
        return value

    def normal(self, mean: float, std: float) -> float:
        return self._random.gauss(mean, std)

    def randint(self, low: int, high: int) -> int:
        """Random integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

    def weighted_chooser(
        self, items: Sequence[T], weights: Sequence[float]
    ) -> Callable[[], T]:
        """Precompiled :meth:`weighted_choice` for a fixed (items, weights).

        Returns a zero-argument callable that draws one item.  The draw is
        *bit-identical* to ``weighted_choice`` on the same stream -- it
        replicates ``random.choices``'s arithmetic (one uniform draw,
        ``bisect`` over the accumulated weights) with the cumulative table
        built once instead of per call.  Hot arrival loops use this so
        swapping it in never changes a simulation's sampled sequence
        (pinned by a regression test).
        """
        population = list(items)
        if len(weights) != len(population):
            raise ValueError(
                "the number of weights does not match the population"
            )
        cum_weights = list(accumulate(weights))
        total = cum_weights[-1] + 0.0
        if total <= 0.0:
            raise ValueError("total of weights must be greater than zero")
        hi = len(cum_weights) - 1
        uniform = self._random.random

        def choose() -> T:
            return population[bisect(cum_weights, uniform() * total, 0, hi)]

        return choose

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        return self._random.sample(list(items), k)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)
