"""Discrete-event simulation kernel underpinning the reproduction.

The kernel provides: an :class:`Environment` (clock + event heap),
generator-based :class:`Process` objects with interrupt-at-checkpoint
semantics, composable events, deterministic RNG streams, and the metric
collectors the experiment harness consumes.
"""

from .environment import Environment
from .errors import EmptySchedule, Interrupt, SimulationError
from .events import AllOf, AnyOf, Condition, Event, Timeout
from .metrics import (
    MetricsCollector,
    RequestRecord,
    RequestStatus,
    SlidingWindow,
    Summary,
    percentile,
)
from .process import Process
from .rng import Rng

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "MetricsCollector",
    "Process",
    "RequestRecord",
    "RequestStatus",
    "Rng",
    "SimulationError",
    "SlidingWindow",
    "Summary",
    "Timeout",
    "percentile",
]
