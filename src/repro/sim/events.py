"""Core event types for the discrete-event simulation kernel.

The kernel is a compact, dependency-free engine in the style of SimPy:
an :class:`Event` is a one-shot occurrence with callbacks; generator-based
processes (see :mod:`repro.sim.process`) yield events to wait on them.

Hot-path notes (see docs/PERFORMANCE.md for the full tour): event types
declare ``__slots__`` and the constructors of the high-volume types
(:class:`Event`, :class:`Timeout`) write fields and push heap entries
directly rather than delegating through ``Environment.schedule`` -- both
paths produce *identical* heap entries ``(time, key, event)`` with
``key = (priority << SEQ_BITS) | seq``, so event ordering is exactly the
(time, priority, sequence) contract documented in
:mod:`repro.sim.environment` no matter which path scheduled the event.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .environment import Environment

# Sentinel for "event has not been triggered yet".
PENDING = object()

# Scheduling priorities: urgent events (interrupts, resource handoffs) run
# before normal events scheduled for the same simulated time.
URGENT = 0
NORMAL = 1

#: Heap keys pack (priority, sequence) into one int:
#: ``key = (priority << SEQ_BITS) | seq``.  Sequence numbers are global
#: across priorities and far below 2**SEQ_BITS, so key order equals
#: lexicographic (priority, sequence) order.
SEQ_BITS = 50
_URGENT_KEY = URGENT << SEQ_BITS
_NORMAL_KEY = NORMAL << SEQ_BITS


class Event:
    """A one-shot occurrence that processes can wait on.

    An event moves through three states: *pending* (just created),
    *triggered* (a value or exception has been set and it is scheduled),
    and *processed* (its callbacks have run).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks invoked with this event when it is processed.  Set to
        #: ``None`` once the event has been processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: A failed event whose exception was handled (e.g. re-raised inside
        #: a process) is "defused" and will not crash the simulation.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        heappush(env._queue, (env._now, _NORMAL_KEY | env._eid, self))
        env._eid += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have ``exception`` thrown into them.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        env = self.env
        heappush(env._queue, (env._now, _NORMAL_KEY | env._eid, self))
        env._eid += 1
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._value is PENDING:
            raise RuntimeError(
                f"cannot trigger {self!r} from {event!r}: the source "
                "event has not been triggered yet"
            )
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts are the kernel's highest-volume event: write the base
        # fields and the heap entry directly (same entry Environment
        # .schedule would build).
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self.defused = False
        self._delay = delay
        heappush(env._queue, (env._now + delay, _NORMAL_KEY | env._eid, self))
        env._eid += 1

    @property
    def delay(self) -> float:
        return self._delay


class Condition(Event):
    """Composite event that triggers when ``evaluate`` says it should.

    Used through the :class:`AllOf` / :class:`AnyOf` helpers.  The value of
    a condition is a dict mapping each *triggered* child event to its value.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: List[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        if not self._events:
            self.succeed({})
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> Dict[Event, Any]:
        # Only *processed* events count: a Timeout is "triggered" the moment
        # it is created (its value is pre-set), but it has not occurred yet.
        return {
            e: e._value for e in self._events if e.callbacks is None and e._ok
        }

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            # Already decided; late child failures must not crash the sim.
            if not event._ok:
                event.defused = True
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Triggers once all of ``events`` have triggered successfully."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Triggers once any of ``events`` has triggered successfully."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
