"""The simulation environment: clock, event heap, and run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, List, Optional, Tuple, Union

from ..obs.tracer import NULL_TRACER
from .errors import EmptySchedule, StopSimulation
from .events import NORMAL, AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGenerator

#: Heap entries: (time, priority, sequence, event).  The sequence number
#: makes ordering total and FIFO among same-time same-priority events.
QueueEntry = Tuple[float, int, int, Event]


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float in *seconds* of simulated time.  All model components
    (resources, applications, ATROPOS itself) share one environment.

    The environment also carries the run's :mod:`repro.obs` tracer; model
    components read ``env.tracer`` at construction time, so the tracer
    must be passed here (before resources are built) to take effect.
    """

    def __init__(self, initial_time: float = 0.0, tracer=None) -> None:
        self._now = float(initial_time)
        self._queue: List[QueueEntry] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Structured tracer (NULL_TRACER = tracing disabled, the default).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Number of started-but-unfinished processes (telemetry gauge).
        self.alive_processes = 0

    @property
    def queue_depth(self) -> int:
        """Number of scheduled-but-unprocessed events (telemetry gauge)."""
        return len(self._queue)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and the run loop
    # ------------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule ``event`` to be processed after ``delay``."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` when no events remain, and re-raises
        the exception of a failed event that nobody handled (not defused).
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events scheduled") from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            # Event was already processed (can happen if it was scheduled
            # twice through trigger chaining); nothing to do.
            return
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # Nobody handled the failure: crash loudly rather than losing it.
            exc = event._value
            raise exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Args:
            until: ``None`` runs until no events remain; a number runs until
                that simulated time; an :class:`Event` runs until that event
                is processed and returns its value.
        """
        if until is None:
            stop_at = float("inf")
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            stop_at = float("inf")
            if stop_event.callbacks is None:
                return stop_event.value
            stop_event.callbacks.append(_stop_simulation)
        else:
            stop_at = float(until)
            stop_event = None
            if stop_at < self._now:
                raise ValueError(
                    f"until ({stop_at}) must not be before now ({self._now})"
                )

        try:
            while self._queue and self.peek() <= stop_at:
                self.step()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            pass

        if stop_event is not None and not stop_event.triggered:
            raise RuntimeError(
                "simulation ran out of events before the until-event triggered"
            )
        if stop_at != float("inf"):
            self._now = stop_at
        return None


def _stop_simulation(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    # Failed until-event: propagate through normal failure handling.
    event.defused = False
