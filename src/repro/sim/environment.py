"""The simulation environment: clock, event heap, and run loop.

Ordering contract (see also docs/ARCHITECTURE.md "Simulation kernel"):
events are processed in ascending ``(time, priority, sequence)`` order.
Time is the simulated timestamp, priority is URGENT (0) before NORMAL
(1), and the sequence number -- assigned in scheduling order -- makes
the order total and FIFO among same-time, same-priority events.

Heap entries are packed 3-tuples ``(time, key, event)`` with
``key = (priority << SEQ_BITS) | seq``: sequence numbers are global and
far below ``2**SEQ_BITS``, so integer key order is exactly lexicographic
(priority, sequence) order, with one comparison and one tuple slot fewer
per entry than the naive 4-tuple.  Everything that schedules an event --
:meth:`Environment.schedule`, the inlined fast paths in
:mod:`repro.sim.events` and :mod:`repro.sim.process`, and
:meth:`Environment.schedule_batch` -- builds entries in this one format.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, List, Optional, Tuple, Union

from ..obs.tracer import NULL_TRACER
from .errors import EmptySchedule, StopSimulation
from .events import NORMAL, SEQ_BITS, AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGenerator

#: Heap entries: (time, (priority << SEQ_BITS) | sequence, event).
QueueEntry = Tuple[float, int, Event]


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float in *seconds* of simulated time.  All model components
    (resources, applications, ATROPOS itself) share one environment.

    The environment also carries the run's :mod:`repro.obs` tracer; model
    components read ``env.tracer`` at construction time, so the tracer
    must be passed here (before resources are built) to take effect.

    :attr:`hooks_enabled` is the consolidated fast-path switch: it is
    computed *once*, here, and components cache it at construction
    instead of re-testing ``tracer.enabled`` per event.  When False, the
    kernel and every layer above it skip span/instant bookkeeping
    entirely; the simulated schedule is identical either way (hooks
    observe, they never steer).
    """

    def __init__(self, initial_time: float = 0.0, tracer=None) -> None:
        self._now = float(initial_time)
        self._queue: List[QueueEntry] = []
        #: Next event sequence number == events scheduled so far.
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Structured tracer (NULL_TRACER = tracing disabled, the default).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: One consolidated flag for "any per-event hook is live".
        self.hooks_enabled = bool(self.tracer.enabled)
        #: Number of started-but-unfinished processes (telemetry gauge).
        self.alive_processes = 0

    @property
    def queue_depth(self) -> int:
        """Number of scheduled-but-unprocessed events (telemetry gauge)."""
        return len(self._queue)

    @property
    def events_scheduled(self) -> int:
        """Total events scheduled so far (the bench throughput counter)."""
        return self._eid

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and the run loop
    # ------------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule ``event`` to be processed after ``delay``."""
        heapq.heappush(
            self._queue,
            (self._now + delay, (priority << SEQ_BITS) | self._eid, event),
        )
        self._eid += 1

    def schedule_batch(
        self, entries: Iterable[Tuple[float, Event]], priority: int = NORMAL
    ) -> int:
        """Schedule many ``(absolute_time, event)`` pairs in one pass.

        ``entries`` must be in ascending time order (sequence numbers are
        assigned in iteration order, so FIFO-among-ties matches what a
        loop of :meth:`schedule` calls would produce).  One
        ``heapify`` replaces per-event sift-ups; with a near-empty queue
        this is the O(n) way to preload an arrival stream.  Returns the
        number of events scheduled.
        """
        queue = self._queue
        eid = self._eid
        key_base = priority << SEQ_BITS
        n = len(queue)
        for at, event in entries:
            queue.append((at, key_base | eid, event))
            eid += 1
        added = len(queue) - n
        self._eid = eid
        heapq.heapify(queue)
        return added

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` when no events remain, and re-raises
        the exception of a failed event that nobody handled (not defused).
        """
        try:
            self._now, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events scheduled") from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            # Event was already processed (can happen if it was scheduled
            # twice through trigger chaining); nothing to do.
            return
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # Nobody handled the failure: crash loudly rather than losing it.
            exc = event._value
            raise exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Args:
            until: ``None`` runs until no events remain; a number runs until
                that simulated time; an :class:`Event` runs until that event
                is processed and returns its value.
        """
        if until is None:
            stop_at = float("inf")
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            stop_at = float("inf")
            if stop_event.callbacks is None:
                return stop_event.value
            stop_event.callbacks.append(_stop_simulation)
        else:
            stop_at = float(until)
            stop_event = None
            if stop_at < self._now:
                raise ValueError(
                    f"until ({stop_at}) must not be before now ({self._now})"
                )

        # The run loop is `step()` inlined: one heappop and one callback
        # sweep per event, no per-event method-call or peek() overhead.
        # Semantics are identical to `while queue: self.step()`.
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue and queue[0][0] <= stop_at:
                self._now, _, event = heappop(queue)
                callbacks = event.callbacks
                if callbacks is None:
                    continue
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    raise event._value
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and not stop_event.triggered:
            raise RuntimeError(
                "simulation ran out of events before the until-event triggered"
            )
        if stop_at != float("inf"):
            self._now = stop_at
        return None


def _stop_simulation(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    # Failed until-event: propagate through normal failure handling.
    event.defused = False
