"""Exception types used by the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at an event.

    Carries the value of the event that ended the run.
    """

    def __init__(self, value: Any) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The simulated application observes the interrupt at its current yield
    point -- exactly the "cancellation checkpoint" semantics ATROPOS relies
    on: a task can only be cancelled at points where it is safe to unwind.

    Attributes:
        cause: arbitrary object describing why the process was interrupted
            (for ATROPOS cancellations this is a :class:`CancelSignal`).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt({self.cause!r})"
