"""Generator-based simulated processes with interrupt support.

A :class:`Process` wraps a Python generator that yields :class:`Event`
objects to wait on them.  Processes can be interrupted, which throws
:class:`~repro.sim.errors.Interrupt` into the generator at its current
yield point -- this models cancellation checkpoints: the simulated
application only observes a cancellation where it chose to wait, and can
run ``try/finally`` cleanup, just like a real cancellation initiator.

``Process._resume`` is the kernel's hottest function: every event
delivery runs it once.  It uses the consolidated
``Environment.hooks_enabled`` flag (checked once at construction, cached
in ``_span``: None means "no tracing") and schedules its completion by
pushing the packed heap entry directly, like the fast paths in
:mod:`repro.sim.events`.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import Interrupt
from .events import PENDING, SEQ_BITS, URGENT, Event

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment

ProcessGenerator = Generator[Event, Any, Any]

_URGENT_KEY = URGENT << SEQ_BITS
_NORMAL_KEY = 1 << SEQ_BITS


class Initialize(Event):
    """Internal event that starts a process on the next kernel step."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self._ok = True
        self._value = None
        self.defused = False
        self.callbacks = [process._resume]
        heappush(env._queue, (env._now, _URGENT_KEY | env._eid, self))
        env._eid += 1


class Interruption(Event):
    """Internal event that delivers an interrupt to a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        self._ok = False
        self._value = Interrupt(cause)
        # The interrupt is expected to be handled (or to kill the process);
        # it must never crash the whole simulation on its own.
        self.defused = True
        self.process = process
        self.callbacks = [self._interrupt]
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: Event) -> None:
        process = self.process
        if process.triggered:
            # The process finished before the interrupt was delivered.
            return
        # Detach the process from whatever it was waiting on so that the
        # original event does not also resume it later.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """A running simulated activity.

    A process is itself an event: it triggers with the generator's return
    value when the generator finishes (or fails with the exception that
    escaped it), so other processes can ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "_target", "name", "_span")

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self.env = env
        self.callbacks = []
        self._value: Any = PENDING
        self._ok = True
        self.defused = False
        self._generator = generator
        #: The event this process is currently waiting on (None while active).
        self._target: Optional[Event] = None
        self.name = getattr(generator, "__name__", "process")
        #: Lifetime span (None when tracing is disabled -- the fast path).
        if env.hooks_enabled:
            tracer = env.tracer
            self._span = tracer.begin(
                env.now, "process", self.name, f"proc:{self.name}"
            )
        else:
            self._span = None
        env.alive_processes += 1
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the process has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is waiting for, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a finished process raises ``RuntimeError``; a process
        cannot interrupt itself (cancel decisions always come from outside
        the task being cancelled).
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already terminated")
        if self.env.active_process is self:
            raise RuntimeError("a process is not allowed to interrupt itself")
        if self.env.hooks_enabled:
            tracer = self.env.tracer
            tracer.instant(
                self.env.now,
                "interrupt",
                f"interrupt {self.name}",
                f"proc:{self.name}",
                cause=str(cause) if cause is not None else None,
            )
        Interruption(self, cause)

    def _finish(self, env: "Environment", ok: bool, value: Any, outcome: str) -> None:
        """Trigger the process event with the generator's outcome."""
        self._ok = ok
        self._value = value
        if self._span is not None:
            self._span.end(env.now, outcome=outcome)
            self._span = None
        env.alive_processes -= 1
        heappush(env._queue, (env._now, _NORMAL_KEY | env._eid, self))
        env._eid += 1

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self
        self._target = None
        send = self._generator.send
        throw = self._generator.throw
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    # The waited-on event failed; the exception is about to
                    # be delivered, so it is handled as far as the kernel is
                    # concerned.
                    event.defused = True
                    next_event = throw(event._value)
            except StopIteration as exc:
                self._finish(env, True, exc.value, "finished")
                break
            except BaseException as exc:
                if isinstance(exc, Interrupt):
                    # A cancellation that unwinds the whole task is an
                    # expected outcome, not a simulation bug: do not crash
                    # the run if nobody joins this process.
                    self.defused = True
                self._finish(env, False, exc, type(exc).__name__)
                break

            if not isinstance(next_event, Event):
                self._finish(
                    env,
                    False,
                    RuntimeError(
                        f"process {self.name!r} yielded {next_event!r}, "
                        "which is not an Event"
                    ),
                    "error",
                )
                break

            if next_event.callbacks is not None:
                # Pending or triggered-but-unprocessed: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # The event was already processed; feed its value immediately.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:
        status = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {status} at {id(self):#x}>"
