"""Generator-based simulated processes with interrupt support.

A :class:`Process` wraps a Python generator that yields :class:`Event`
objects to wait on them.  Processes can be interrupted, which throws
:class:`~repro.sim.errors.Interrupt` into the generator at its current
yield point -- this models cancellation checkpoints: the simulated
application only observes a cancellation where it chose to wait, and can
run ``try/finally`` cleanup, just like a real cancellation initiator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import Interrupt
from .events import NORMAL, URGENT, Event

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment

ProcessGenerator = Generator[Event, Any, Any]


class Initialize(Event):
    """Internal event that starts a process on the next kernel step."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks = [process._resume]
        env.schedule(self, priority=URGENT)


class Interruption(Event):
    """Internal event that delivers an interrupt to a process."""

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        self._ok = False
        self._value = Interrupt(cause)
        # The interrupt is expected to be handled (or to kill the process);
        # it must never crash the whole simulation on its own.
        self.defused = True
        self.process = process
        self.callbacks = [self._interrupt]
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: Event) -> None:
        process = self.process
        if process.triggered:
            # The process finished before the interrupt was delivered.
            return
        # Detach the process from whatever it was waiting on so that the
        # original event does not also resume it later.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """A running simulated activity.

    A process is itself an event: it triggers with the generator's return
    value when the generator finishes (or fails with the exception that
    escaped it), so other processes can ``yield proc`` to join it.
    """

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None while active).
        self._target: Optional[Event] = None
        self.name = getattr(generator, "__name__", "process")
        tracer = env.tracer
        #: Lifetime span (None when tracing is disabled).
        self._span = (
            tracer.begin(env.now, "process", self.name, f"proc:{self.name}")
            if tracer.enabled
            else None
        )
        env.alive_processes += 1
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the process has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is waiting for, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a finished process raises ``RuntimeError``; a process
        cannot interrupt itself (cancel decisions always come from outside
        the task being cancelled).
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already terminated")
        if self.env.active_process is self:
            raise RuntimeError("a process is not allowed to interrupt itself")
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant(
                self.env.now,
                "interrupt",
                f"interrupt {self.name}",
                f"proc:{self.name}",
                cause=str(cause) if cause is not None else None,
            )
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The waited-on event failed; the exception is about to
                    # be delivered, so it is handled as far as the kernel is
                    # concerned.
                    event.defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                if self._span is not None:
                    self._span.end(env.now, outcome="finished")
                    self._span = None
                env.alive_processes -= 1
                env.schedule(self, priority=NORMAL)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                if isinstance(exc, Interrupt):
                    # A cancellation that unwinds the whole task is an
                    # expected outcome, not a simulation bug: do not crash
                    # the run if nobody joins this process.
                    self.defused = True
                if self._span is not None:
                    self._span.end(env.now, outcome=type(exc).__name__)
                    self._span = None
                env.alive_processes -= 1
                env.schedule(self, priority=NORMAL)
                break

            if not isinstance(next_event, Event):
                exc = RuntimeError(
                    f"process {self.name!r} yielded {next_event!r}, "
                    "which is not an Event"
                )
                self._ok = False
                self._value = exc
                if self._span is not None:
                    self._span.end(env.now, outcome="error")
                    self._span = None
                env.alive_processes -= 1
                env.schedule(self, priority=NORMAL)
                break

            if next_event.callbacks is not None:
                # Pending or triggered-but-unprocessed: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # The event was already processed; feed its value immediately.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:
        status = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {status} at {id(self):#x}>"
