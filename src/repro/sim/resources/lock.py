"""Shared/exclusive lock with FIFO queueing and wait-time accounting.

Models application synchronization resources: table locks, metadata locks,
undo-log latches, WAL insert locks, document locks, index locks, ...

Fault injection: a lock has no capacity to shrink, so it implements no
``degrade()`` hook (the base :class:`~repro.sim.resources.base.Resource`
default raises, and :mod:`repro.faults` records a ``degrade`` fault
targeting a lock as not-applied).  Lock *contention* faults are modelled
upstream instead -- workload bursts and resource degradation elsewhere
lengthen hold times and form convoys here.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional

from .base import Grant, Resource

if TYPE_CHECKING:  # pragma: no cover
    from ..environment import Environment


class LockGrant(Grant):
    """Grant event for a :class:`SyncLock` acquisition."""

    __slots__ = ("exclusive",)

    def __init__(
        self, env: "Environment", lock: "SyncLock", owner: Any, exclusive: bool
    ) -> None:
        super().__init__(env, lock, owner)
        self.exclusive = exclusive


class SyncLock(Resource):
    """A reader/writer lock with strict FIFO ordering.

    Traced events (when the environment has a live tracer): a *wait*
    span per queued acquisition, a *hold* span per granted one, and a
    queue-depth/holders counter sampled at every state transition.

    FIFO ordering means a queued writer blocks readers that arrive after
    it -- this is what turns one long lock holder into a convoy, the exact
    dynamic behind the paper's case 1 (backup query) and case 4 (SELECT
    FOR UPDATE).

    Holders and waiters are :class:`LockGrant` events; release via
    ``grant.close()`` (or the context-manager protocol).
    """

    trace_cat = "lock"

    def __init__(self, env: "Environment", name: str) -> None:
        super().__init__(env, name)
        self._holders: List[LockGrant] = []
        self._waiters: Deque[LockGrant] = deque()
        #: Cumulative wait time accounted on grants (for diagnostics).
        self.total_wait_time = 0.0
        self.total_hold_time = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def holders(self) -> List[LockGrant]:
        return list(self._holders)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def held_exclusive(self) -> bool:
        return any(g.exclusive for g in self._holders)

    def holder_owners(self) -> List[Any]:
        return [g.owner for g in self._holders]

    def telemetry_snapshot(self) -> dict:
        """Scrape-friendly state (see :mod:`repro.telemetry.scrape`)."""
        return {
            "utilization": 1.0 if self._holders else 0.0,
            "queue_depth": float(len(self._waiters)),
            "holders": float(len(self._holders)),
            "wait_seconds_total": self.total_wait_time,
            "hold_seconds_total": self.total_hold_time,
        }

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------
    def acquire(self, owner: Any = None, exclusive: bool = True) -> LockGrant:
        """Request the lock; returns a grant event to yield on."""
        grant = LockGrant(self.env, self, owner, exclusive)
        self._waiters.append(grant)
        if self._traced:
            self._trace_wait_begin(grant, exclusive=exclusive)
            self._trace_depths(
                queued=len(self._waiters), holders=len(self._holders)
            )
        self._dispatch()
        return grant

    def _compatible(self, grant: LockGrant) -> bool:
        if grant.exclusive:
            return not self._holders
        return not self.held_exclusive

    def _dispatch(self) -> None:
        """Grant as many head-of-queue waiters as compatibility allows."""
        while self._waiters:
            head = self._waiters[0]
            if not self._compatible(head):
                break
            self._waiters.popleft()
            self._holders.append(head)
            self.total_wait_time += self.env.now - head.request_time
            if self._traced:
                self._trace_granted(head, exclusive=head.exclusive)
                self._trace_depths(
                    queued=len(self._waiters), holders=len(self._holders)
                )
            head._mark_granted()

    def _close(self, grant: Grant) -> None:
        if grant in self._holders:
            self._holders.remove(grant)
            self.total_hold_time += grant.hold_time
            if self._traced:
                self._trace_released(grant)
                self._trace_depths(
                    queued=len(self._waiters), holders=len(self._holders)
                )
            self._dispatch()
            return
        # Pending waiter abandoning the queue (cancelled while waiting).
        try:
            self._waiters.remove(grant)  # type: ignore[arg-type]
        except ValueError:
            pass
        else:
            if self._traced:
                self._trace_abandoned(grant)
                self._trace_depths(
                    queued=len(self._waiters), holders=len(self._holders)
                )
            # Removing a queued writer can unblock readers behind it.
            self._dispatch()
