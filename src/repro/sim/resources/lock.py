"""Shared/exclusive lock with FIFO queueing and wait-time accounting.

Models application synchronization resources: table locks, metadata locks,
undo-log latches, WAL insert locks, document locks, index locks, ...

Fault injection: a lock has no capacity to shrink, so it implements no
``degrade()`` hook (the base :class:`~repro.sim.resources.base.Resource`
default raises, and :mod:`repro.faults` records a ``degrade`` fault
targeting a lock as not-applied).  Lock *contention* faults are modelled
upstream instead -- workload bursts and resource degradation elsewhere
lengthen hold times and form convoys here.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from .base import Grant, Resource

if TYPE_CHECKING:  # pragma: no cover
    from ..environment import Environment


class LockGrant(Grant):
    """Grant event for a :class:`SyncLock` acquisition."""

    __slots__ = ("exclusive",)

    def __init__(
        self, env: "Environment", lock: "SyncLock", owner: Any, exclusive: bool
    ) -> None:
        super().__init__(env, lock, owner)
        self.exclusive = exclusive


class SyncLock(Resource):
    """A reader/writer lock with strict FIFO ordering.

    Traced events (when the environment has a live tracer): a *wait*
    span per queued acquisition, a *hold* span per granted one, and a
    queue-depth/holders counter sampled at every state transition.

    FIFO ordering means a queued writer blocks readers that arrive after
    it -- this is what turns one long lock holder into a convoy, the exact
    dynamic behind the paper's case 1 (backup query) and case 4 (SELECT
    FOR UPDATE).

    Holders and waiters are :class:`LockGrant` events; release via
    ``grant.close()`` (or the context-manager protocol).

    **Passivation (Malthusian scheduling).**  A mitigation lever may park
    queued waiters off the dispatch path with :meth:`reshape_queue` --
    the Malthusian Locks idea (arXiv 1511.06035) of culling excess
    waiters so the survivors stop convoying -- and readmit them with
    :meth:`reactivate`.  Passivated grants keep their relative FIFO
    order among themselves, active waiters keep theirs, and a fully idle
    lock auto-readmits its parked grants -- one at a time, the next only
    once the previously promoted owner has finished, so a parked storm
    drains serially instead of re-forming its convoy -- and progress
    never depends on the lever calling back.  No work is lost: a parked
    grant is still a live acquisition, merely deprioritized.
    """

    trace_cat = "lock"

    def __init__(self, env: "Environment", name: str) -> None:
        super().__init__(env, name)
        self._holders: List[LockGrant] = []
        self._waiters: Deque[LockGrant] = deque()
        #: Waiters parked off the dispatch path by :meth:`reshape_queue`
        #: (FIFO among themselves; invisible to :meth:`_dispatch`).
        self._passivated: List[LockGrant] = []
        #: Cumulative wait time accounted on grants (for diagnostics).
        self.total_wait_time = 0.0
        self.total_hold_time = 0.0
        #: Lifetime count of waiters moved to the passive set.
        self.waiters_culled_total = 0
        #: Lifetime count of parked waiters readmitted to the queue.
        self.waiters_reactivated_total = 0
        #: Owner of the last idle-promoted grant; the next passive
        #: promotion waits until this owner is no longer ``alive``.
        self._promoted_owner: Any = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def holders(self) -> List[LockGrant]:
        return list(self._holders)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def passivated_count(self) -> int:
        return len(self._passivated)

    @property
    def passivated(self) -> List[LockGrant]:
        return list(self._passivated)

    @property
    def held_exclusive(self) -> bool:
        return any(g.exclusive for g in self._holders)

    def holder_owners(self) -> List[Any]:
        return [g.owner for g in self._holders]

    def telemetry_snapshot(self) -> dict:
        """Scrape-friendly state (see :mod:`repro.telemetry.scrape`)."""
        return {
            "utilization": 1.0 if self._holders else 0.0,
            "queue_depth": float(len(self._waiters)),
            "holders": float(len(self._holders)),
            "wait_seconds_total": self.total_wait_time,
            "hold_seconds_total": self.total_hold_time,
            "waiters_parked": float(len(self._passivated)),
            "waiters_culled_total": float(self.waiters_culled_total),
            "waiters_reactivated_total": float(
                self.waiters_reactivated_total
            ),
        }

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------
    def acquire(self, owner: Any = None, exclusive: bool = True) -> LockGrant:
        """Request the lock; returns a grant event to yield on."""
        grant = LockGrant(self.env, self, owner, exclusive)
        self._waiters.append(grant)
        if self._traced:
            self._trace_wait_begin(grant, exclusive=exclusive)
            self._trace_depths(
                queued=len(self._waiters), holders=len(self._holders)
            )
        self._dispatch()
        return grant

    def _compatible(self, grant: LockGrant) -> bool:
        if grant.exclusive:
            return not self._holders
        return not self.held_exclusive

    def _dispatch(self) -> None:
        """Grant as many head-of-queue waiters as compatibility allows."""
        while self._waiters:
            head = self._waiters[0]
            if not self._compatible(head):
                break
            self._waiters.popleft()
            self._holders.append(head)
            self.total_wait_time += self.env.now - head.request_time
            if self._traced:
                self._trace_granted(head, exclusive=head.exclusive)
                self._trace_depths(
                    queued=len(self._waiters), holders=len(self._holders)
                )
            head._mark_granted()
        # Progress guarantee: a fully idle lock readmits parked waiters
        # even if no lever ever calls reactivate() -- but one at a time
        # (the Malthusian "promote one passive waiter" rule), and only
        # after the previously promoted owner finished.  A chunk-wise
        # culprit briefly idles the lock between chunks; gating on the
        # owner's lifetime keeps the drain serial instead of letting a
        # new storm member through at every chunk boundary.  Owners
        # without an ``alive`` flag (non-task owners) never gate.
        if not self._holders and not self._waiters and self._passivated:
            if not getattr(self._promoted_owner, "alive", False):
                self._promoted_owner = self._passivated[0].owner
                self.reactivate(limit=1)

    # ------------------------------------------------------------------
    # Malthusian passivation (queue reshaping)
    # ------------------------------------------------------------------
    def reshape_queue(
        self, should_park: Callable[[LockGrant], bool]
    ) -> int:
        """Park queued waiters matching ``should_park`` off the hot path.

        Parked grants stop participating in FIFO dispatch until
        :meth:`reactivate` (or the idle auto-readmit) re-queues them.
        Active waiters keep their relative order, so fairness among the
        survivors is untouched.  Returns the number of waiters parked.
        """
        if not self._waiters:
            return 0
        survivors: Deque[LockGrant] = deque()
        parked = 0
        for grant in self._waiters:
            if should_park(grant):
                self._passivated.append(grant)
                parked += 1
            else:
                survivors.append(grant)
        if not parked:
            return 0
        self._waiters = survivors
        self.waiters_culled_total += parked
        if self._traced:
            self._trace_depths(
                queued=len(self._waiters), holders=len(self._holders)
            )
        # Parking a queued writer can unblock readers behind it.
        self._dispatch()
        return parked

    def reactivate(self, limit: Optional[int] = None) -> int:
        """Readmit parked grants at the tail of the active queue.

        Readmits up to ``limit`` grants (default: all) and returns the
        number readmitted.  Relative FIFO order within the passive set
        is preserved; readmitted grants queue behind every currently
        active waiter (they were culled for a reason -- they do not get
        their old positions back).
        """
        if not self._passivated:
            return 0
        readmitted = len(self._passivated)
        if limit is not None:
            readmitted = min(max(0, limit), readmitted)
            if readmitted == 0:
                return 0
        self._waiters.extend(self._passivated[:readmitted])
        del self._passivated[:readmitted]
        self.waiters_reactivated_total += readmitted
        if self._traced:
            self._trace_depths(
                queued=len(self._waiters), holders=len(self._holders)
            )
        self._dispatch()
        return readmitted

    def _close(self, grant: Grant) -> None:
        if grant in self._holders:
            self._holders.remove(grant)
            self.total_hold_time += grant.hold_time
            if self._traced:
                self._trace_released(grant)
                self._trace_depths(
                    queued=len(self._waiters), holders=len(self._holders)
                )
            self._dispatch()
            return
        # Pending waiter abandoning the queue (cancelled while waiting).
        try:
            self._waiters.remove(grant)  # type: ignore[arg-type]
        except ValueError:
            pass
        else:
            if self._traced:
                self._trace_abandoned(grant)
                self._trace_depths(
                    queued=len(self._waiters), holders=len(self._holders)
                )
            # Removing a queued writer can unblock readers behind it.
            self._dispatch()
            return
        # Parked waiter abandoning the passive set (cancelled while
        # passivated): drop it without perturbing the active queue.
        try:
            self._passivated.remove(grant)  # type: ignore[arg-type]
        except ValueError:
            pass
        else:
            if self._traced:
                self._trace_abandoned(grant)
