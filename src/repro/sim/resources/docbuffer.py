"""Document-granularity LRU buffer with page packing.

Models a document store's cache (MongoDB's buffer) at *document*
granularity, the design the mongodb-d4 workload analyzer arrived at:
tracking one document per page is simple but wildly inaccurate for small
documents, while true document granularity means the buffer holds "way
too many documents", which slows down look-up and eviction.  This
primitive keeps both effects honest:

* **page packing** -- each collection declares its document size;
  ``docs_per_page = max(1, page_size // doc_bytes)`` documents share a
  page, and occupancy is accounted in pages
  (``ceil(resident / docs_per_page)`` per collection);
* **O(1) eviction** -- documents live on one intrusive doubly-linked
  LRU list (dict lookup + unlink), so touch, insert, and per-document
  evict are constant-time regardless of how many documents are
  resident; and
* **small documents make eviction slow anyway** -- freeing one page of
  a small-document collection requires unlinking ``docs_per_page``
  documents, so the per-*page* reclaim cost scales with packing density.
  Callers charge ``evicted_docs * evict_doc_cost`` to the faulting
  accessor, which is exactly the overload of the bulk-insert case: a
  flood of tiny documents turns every victim re-fault into a long walk.

Ownership is tracked per document for blame attribution: communal
working sets use a shared owner token, culprits insert under their own
task so cancellation can release everything they drove in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from .base import Resource


class _DocNode:
    """Intrusive LRU-list node for one resident document."""

    __slots__ = ("key", "collection", "owner", "prev", "next")

    def __init__(
        self, key: Tuple[str, Hashable], collection: str, owner: Any
    ) -> None:
        self.key = key
        self.collection = collection
        self.owner = owner
        self.prev: Optional["_DocNode"] = None
        self.next: Optional["_DocNode"] = None


@dataclass
class DocAccessOutcome:
    """Result of one :meth:`DocumentBuffer.access` call."""

    hits: int = 0
    misses: int = 0
    #: Documents evicted to make room (callers charge
    #: ``evicted_docs * evict_doc_cost`` as the reclaim stall).
    evicted_docs: int = 0
    #: Pages actually freed by those evictions.
    evicted_pages: int = 0
    #: Linked-list unlinks performed while evicting: exactly one per
    #: evicted document (the O(1)-per-doc eviction guarantee).
    unlink_ops: int = 0
    #: owner -> number of its documents evicted.
    victims: Dict[Any, int] = field(default_factory=dict)


class DocumentBuffer(Resource):
    """A fixed-capacity page-packed document cache with global LRU.

    Collections must be declared up front (:meth:`register_collection`)
    so the buffer knows each one's packing density.  :meth:`access`
    touches documents by ``(collection, doc_id)``: hits refresh recency,
    misses insert at the MRU end under the accessing owner and evict
    globally-LRU documents until occupancy fits.

    Fault-injection hooks: :meth:`degrade` shrinks
    :attr:`capacity_pages` mid-run (evicting overflow immediately);
    :meth:`restore` returns to nominal.
    """

    trace_cat = "mem"

    def __init__(
        self,
        env,
        name: str,
        capacity_pages: int,
        page_size_bytes: int = 4096,
        evict_doc_cost: float = 0.0002,
    ) -> None:
        super().__init__(env, name)
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        if page_size_bytes <= 0:
            raise ValueError("page_size_bytes must be positive")
        self.capacity_pages = capacity_pages
        #: Nominal capacity; :meth:`degrade`/:meth:`restore` move
        #: :attr:`capacity_pages` relative to this.
        self.nominal_capacity_pages = capacity_pages
        self.page_size_bytes = page_size_bytes
        #: Simulated seconds to unlink one document during eviction;
        #: callers multiply by ``evicted_docs`` (NOT pages -- that is
        #: the small-document slowdown).
        self.evict_doc_cost = evict_doc_cost

        #: collection -> documents packed per page.
        self._docs_per_page: Dict[str, int] = {}
        #: collection -> resident document count.
        self._resident: Dict[str, int] = {}
        #: (collection, doc_id) -> node, for O(1) presence/touch.
        self._nodes: Dict[Tuple[str, Hashable], _DocNode] = {}
        #: owner -> {key: None} (insertion-ordered; deterministic).
        self._owner_docs: Dict[Any, Dict[Tuple[str, Hashable], None]] = {}
        #: Incrementally-maintained sum of per-collection page ceilings.
        self._pages_used = 0
        # LRU list sentinels: head.next is the eviction candidate.
        self._head = _DocNode(("", None), "", None)
        self._tail = _DocNode(("", None), "", None)
        self._head.next = self._tail
        self._tail.prev = self._head

        # Lifetime counters (telemetry).
        self.total_hits = 0
        self.total_misses = 0
        self.total_evicted_docs = 0
        self.total_evicted_pages = 0
        self.total_released_docs = 0

    # ------------------------------------------------------------------
    # Collections
    # ------------------------------------------------------------------
    def register_collection(self, collection: str, doc_bytes: int) -> int:
        """Declare a collection's document size; returns docs-per-page."""
        if doc_bytes <= 0:
            raise ValueError("doc_bytes must be positive")
        if collection in self._docs_per_page:
            raise ValueError(f"collection {collection!r} already registered")
        dpp = max(1, self.page_size_bytes // doc_bytes)
        self._docs_per_page[collection] = dpp
        self._resident[collection] = 0
        return dpp

    def docs_per_page(self, collection: str) -> int:
        return self._docs_per_page[collection]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pages_used(self) -> int:
        return self._pages_used

    @property
    def free_pages(self) -> int:
        return self.capacity_pages - self._pages_used

    def resident_docs(self, collection: Optional[str] = None) -> int:
        if collection is not None:
            return self._resident.get(collection, 0)
        return len(self._nodes)

    def owner_docs(self, owner: Any) -> int:
        return len(self._owner_docs.get(owner, ()))

    def contains(self, collection: str, doc_id: Hashable) -> bool:
        return (collection, doc_id) in self._nodes

    def occupancy(self) -> float:
        return self._pages_used / self.capacity_pages

    def lru_keys(self) -> List[Tuple[str, Hashable]]:
        """Resident keys in eviction order (oldest first); O(n), tests."""
        keys = []
        node = self._head.next
        while node is not self._tail:
            keys.append(node.key)
            node = node.next
        return keys

    def telemetry_snapshot(self) -> dict:
        """Scrape-friendly state (see :mod:`repro.telemetry.scrape`)."""
        return {
            "utilization": self.occupancy(),
            "capacity_pages": float(self.capacity_pages),
            "free_pages": float(self.free_pages),
            "resident_docs": float(len(self._nodes)),
            "hits_total": float(self.total_hits),
            "misses_total": float(self.total_misses),
            "evicted_docs_total": float(self.total_evicted_docs),
            "evicted_pages_total": float(self.total_evicted_pages),
            "released_docs_total": float(self.total_released_docs),
        }

    # ------------------------------------------------------------------
    # Access / release
    # ------------------------------------------------------------------
    def access(
        self, owner: Any, collection: str, doc_ids: Iterable[Hashable]
    ) -> DocAccessOutcome:
        """Touch documents; misses fault in under ``owner`` and may evict.

        Hits move the document to the MRU end without changing its
        owner (a communal document stays communal).  Misses insert at
        the MRU end, then evict globally-LRU documents until the page
        budget fits again.
        """
        if collection not in self._docs_per_page:
            raise KeyError(f"unregistered collection {collection!r}")
        outcome = DocAccessOutcome()
        for doc_id in doc_ids:
            key = (collection, doc_id)
            node = self._nodes.get(key)
            if node is not None:
                outcome.hits += 1
                self._unlink(node)
                self._push_mru(node)
            else:
                outcome.misses += 1
                self._insert(key, collection, owner)
                self._evict_to_fit(outcome)
        self.total_hits += outcome.hits
        self.total_misses += outcome.misses
        if self._traced and outcome.evicted_docs:
            from ...obs.tracer import owner_label

            self._tracer.instant(
                self.env.now,
                "mem",
                f"evict for {owner_label(owner)}",
                self._track,
                evicted_docs=outcome.evicted_docs,
                evicted_pages=outcome.evicted_pages,
                victims={
                    owner_label(victim): count
                    for victim, count in outcome.victims.items()
                },
            )
        if self._traced and (outcome.misses or outcome.evicted_docs):
            self._trace_depths(
                used=self._pages_used, free=self.free_pages
            )
        return outcome

    def release_owner(self, owner: Any) -> int:
        """Drop every document ``owner`` faulted in; returns the count.

        Work is proportional to the owner's resident documents (each is
        one dict delete plus one list unlink).
        """
        docs = self._owner_docs.pop(owner, None)
        if not docs:
            return 0
        released = 0
        for key in docs:
            node = self._nodes.pop(key)
            self._unlink(node)
            self._drop_resident(node.collection)
            released += 1
        self.total_released_docs += released
        if self._traced:
            self._trace_depths(used=self._pages_used, free=self.free_pages)
        return released

    # ------------------------------------------------------------------
    # Fault injection (capacity loss)
    # ------------------------------------------------------------------
    def set_capacity(self, capacity_pages: int) -> int:
        """Resize the buffer; evicts overflow, returns docs evicted."""
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        self.capacity_pages = capacity_pages
        outcome = DocAccessOutcome()
        self._evict_to_fit(outcome)
        if self._traced and outcome.evicted_docs:
            self._trace_depths(used=self._pages_used, free=self.free_pages)
        return outcome.evicted_docs

    def degrade(self, factor: float) -> None:
        """Fault-injection hook: shrink to ``factor`` of nominal capacity."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("degrade factor must be in (0, 1]")
        self.set_capacity(
            max(1, int(round(self.nominal_capacity_pages * factor)))
        )

    def restore(self) -> None:
        """Return to nominal capacity (evicted documents re-fault lazily)."""
        self.set_capacity(self.nominal_capacity_pages)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _insert(
        self, key: Tuple[str, Hashable], collection: str, owner: Any
    ) -> None:
        node = _DocNode(key, collection, owner)
        self._nodes[key] = node
        self._push_mru(node)
        self._owner_docs.setdefault(owner, {})[key] = None
        # Page accounting: a new document opens a page exactly when the
        # previous count filled its pages to the brim.
        if self._resident[collection] % self._docs_per_page[collection] == 0:
            self._pages_used += 1
        self._resident[collection] += 1

    def _evict_to_fit(self, outcome: DocAccessOutcome) -> None:
        while self._pages_used > self.capacity_pages:
            victim = self._head.next
            if victim is self._tail:  # pragma: no cover - defensive
                break
            self._unlink(victim)
            outcome.unlink_ops += 1
            del self._nodes[victim.key]
            owned = self._owner_docs.get(victim.owner)
            if owned is not None:
                owned.pop(victim.key, None)
                if not owned:
                    del self._owner_docs[victim.owner]
            pages_before = self._pages_used
            self._drop_resident(victim.collection)
            outcome.evicted_docs += 1
            outcome.evicted_pages += pages_before - self._pages_used
            outcome.victims[victim.owner] = (
                outcome.victims.get(victim.owner, 0) + 1
            )
            self.total_evicted_docs += 1
            self.total_evicted_pages += pages_before - self._pages_used

    def _drop_resident(self, collection: str) -> None:
        self._resident[collection] -= 1
        if self._resident[collection] % self._docs_per_page[collection] == 0:
            self._pages_used -= 1

    def _unlink(self, node: _DocNode) -> None:
        node.prev.next = node.next
        node.next.prev = node.prev
        node.prev = node.next = None

    def _push_mru(self, node: _DocNode) -> None:
        last = self._tail.prev
        last.next = node
        node.prev = last
        node.next = self._tail
        self._tail.prev = node

    def _close(self, grant: Any) -> None:  # pragma: no cover - unused
        raise NotImplementedError("DocumentBuffer uses access/release_owner")
