"""Shared plumbing for simulated resource primitives.

Every primitive hands out *grant events*: a process yields the grant to
wait for the resource.  Grants are context managers so that cancellation
(an :class:`~repro.sim.errors.Interrupt` raised at the yield point) always
leaves the resource in a consistent state::

    with lock.acquire(owner=task) as grant:
        yield grant            # may raise Interrupt; __exit__ cleans up
        ... use the resource ...

This mirrors the safe-cancellation discipline the paper observes in real
applications: resource acquire/release sites are exactly the cancellation
checkpoints, and cleanup runs before the task unwinds.

Fault injection: primitives that model capacity expose a
``degrade(factor)`` / ``restore()`` pair (see :meth:`Resource.degrade`)
through which :mod:`repro.faults` shrinks them mid-run -- worker loss,
buffer-pool shrinkage, disk slowdowns.  Primitives without a meaningful
capacity notion (e.g. :class:`~repro.sim.resources.lock.SyncLock`) leave
the default implementation, which raises ``NotImplementedError``; the
injector records such faults as not-applied instead of crashing the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ...obs.tracer import NULL_TRACER, owner_label
from ..events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..environment import Environment


class Grant(Event):
    """Base class for resource grant events.

    A grant is *pending* while queued, *granted* once the resource is
    assigned, and *closed* after release or cancellation.
    """

    #: ``_wait_aid`` / ``_hold_aid`` are the async-span ids the tracing
    #: helpers below hang on the grant; ``_closed_hold`` freezes the hold
    #: time at close.  All three are slots (set lazily, read defensively).
    __slots__ = (
        "resource",
        "owner",
        "request_time",
        "grant_time",
        "closed",
        "_closed_hold",
        "_wait_aid",
        "_hold_aid",
    )

    def __init__(self, env: "Environment", resource: Any, owner: Any) -> None:
        super().__init__(env)
        self.resource = resource
        self.owner = owner
        self.request_time = env.now
        self.grant_time: Optional[float] = None
        self.closed = False

    @property
    def granted(self) -> bool:
        return self.grant_time is not None

    @property
    def wait_time(self) -> float:
        """Queueing delay between request and grant (so far, if pending)."""
        if self.grant_time is None:
            return self.env.now - self.request_time
        return self.grant_time - self.request_time

    @property
    def hold_time(self) -> float:
        """Time the resource has been held (0 if never granted)."""
        if self.grant_time is None:
            return 0.0
        if self.closed:
            return self._closed_hold
        return self.env.now - self.grant_time

    def _mark_granted(self) -> None:
        self.grant_time = self.env.now
        self.succeed(self)

    def close(self) -> None:
        """Release the resource if granted, or leave the queue if pending.

        Idempotent; safe to call from ``finally`` blocks and ``__exit__``.
        """
        if self.closed:
            return
        self._closed_hold = self.hold_time if self.grant_time is not None else 0.0
        self.closed = True
        self.resource._close(self)

    # -- context manager protocol -------------------------------------
    def __enter__(self) -> "Grant":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


class Resource:
    """Base class for primitives; subclasses implement ``_close``.

    Tracing: resources cache ``env.tracer`` at construction (the tracer
    is installed when the environment is built, before any resource).
    The shared helpers below emit the wait/hold span pair every queued
    primitive produces -- an async *wait* span from request to grant (or
    abandonment) and an async *hold* span from grant to release -- plus
    queue-depth counters.  Subclasses gate every helper call on the
    cached ``self._traced`` bool (resolved once here, from the
    consolidated ``Environment.hooks_enabled`` switch), so the untraced
    fast path costs one attribute load and one branch per transition.
    """

    #: Trace category; also prefixes the per-resource track name.
    trace_cat = "resource"

    def __init__(self, env: "Environment", name: str, traced: bool = True) -> None:
        self.env = env
        self.name = name
        self._tracer = env.tracer if traced else NULL_TRACER
        #: Fast-path switch: True only when a live tracer will record us.
        self._traced = bool(traced and env.hooks_enabled)

    def _close(self, grant: Grant) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- fault-injection hooks ----------------------------------------
    def degrade(self, factor: float) -> None:
        """Shrink this resource to ``factor`` of its nominal capacity.

        Fault-injection hook (see :mod:`repro.faults`): subclasses that
        model capacity (workers, pages, cores, bandwidth) override this
        to apply a mid-run degradation.  Calling ``degrade`` again
        re-degrades *from nominal* (factors do not stack);
        :meth:`restore` returns to nominal.  The base implementation
        raises ``NotImplementedError`` -- not every primitive has a
        meaningful capacity to lose.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support degrade()"
        )

    def restore(self) -> None:
        """Undo :meth:`degrade`, returning to nominal capacity."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support restore()"
        )

    # -- tracing helpers ----------------------------------------------
    @property
    def _track(self) -> str:
        return f"{self.trace_cat}:{self.name}"

    def _trace_wait_begin(self, grant: Grant, **args: Any) -> None:
        tracer = self._tracer
        if tracer.enabled:
            grant._wait_aid = tracer.async_begin(
                self.env.now,
                self.trace_cat,
                f"wait {owner_label(grant.owner)}",
                self._track,
                **args,
            )

    def _trace_granted(self, grant: Grant, **args: Any) -> None:
        tracer = self._tracer
        if tracer.enabled:
            now = self.env.now
            aid = getattr(grant, "_wait_aid", None)
            if aid is not None:
                tracer.async_end(
                    now,
                    self.trace_cat,
                    f"wait {owner_label(grant.owner)}",
                    self._track,
                    aid,
                )
                grant._wait_aid = None
            grant._hold_aid = tracer.async_begin(
                now,
                self.trace_cat,
                f"hold {owner_label(grant.owner)}",
                self._track,
                **args,
            )

    def _trace_released(self, grant: Grant, **args: Any) -> None:
        tracer = self._tracer
        if tracer.enabled:
            aid = getattr(grant, "_hold_aid", None)
            if aid is not None:
                tracer.async_end(
                    self.env.now,
                    self.trace_cat,
                    f"hold {owner_label(grant.owner)}",
                    self._track,
                    aid,
                    **args,
                )
                grant._hold_aid = None

    def _trace_abandoned(self, grant: Grant) -> None:
        tracer = self._tracer
        if tracer.enabled:
            aid = getattr(grant, "_wait_aid", None)
            if aid is not None:
                tracer.async_end(
                    self.env.now,
                    self.trace_cat,
                    f"wait {owner_label(grant.owner)}",
                    self._track,
                    aid,
                    abandoned=True,
                )
                grant._wait_aid = None

    def _trace_depths(self, **values: float) -> None:
        tracer = self._tracer
        if tracer.enabled:
            tracer.counter(self.env.now, self.name, self._track, **values)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
