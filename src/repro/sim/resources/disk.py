"""Disk I/O device: FIFO service with per-op latency plus bandwidth.

Models system I/O contention (the paper's case 8: PostgreSQL vacuum
saturating the disk and slowing queries).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator

from ...obs.tracer import owner_label
from ..events import Event
from .threadpool import ThreadPool

if TYPE_CHECKING:  # pragma: no cover
    from ..environment import Environment


class DiskIO:
    """A disk with fixed queue depth, per-op latency, and bandwidth.

    Traced events: one async span per I/O operation (device-queue slot
    management is internal and stays untraced) plus a queue-depth
    counter sampled at op boundaries.

    Fault-injection hooks: :meth:`degrade` divides bandwidth and
    multiplies per-op latency by ``1 / factor`` mid-run (a failing or
    throttled device); :meth:`restore` returns to nominal.  In-flight
    operations keep the service time computed at issue.
    """

    def __init__(
        self,
        env: "Environment",
        name: str,
        bandwidth_bytes_per_sec: float = 200e6,
        op_latency: float = 0.0001,
        queue_depth: int = 8,
    ) -> None:
        if bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.name = name
        self.bandwidth = bandwidth_bytes_per_sec
        self.op_latency = op_latency
        #: Nominal device parameters; :meth:`degrade`/:meth:`restore`
        #: move :attr:`bandwidth` / :attr:`op_latency` relative to these.
        self.nominal_bandwidth = bandwidth_bytes_per_sec
        self.nominal_op_latency = op_latency
        self._pool = ThreadPool(env, f"{name}.queue", queue_depth, traced=False)
        self._tracer = env.tracer
        #: owner -> cumulative bytes transferred.
        self.bytes_by_owner: Dict[Any, float] = {}
        self.total_bytes = 0.0

    @property
    def queue(self) -> ThreadPool:
        """The device queue (for callers that manage slots themselves)."""
        return self._pool

    @property
    def queue_length(self) -> int:
        return self._pool.queue_length

    @property
    def inflight(self) -> int:
        return self._pool.active

    def transferred(self, owner: Any) -> float:
        return self.bytes_by_owner.get(owner, 0.0)

    def telemetry_snapshot(self) -> dict:
        """Scrape-friendly state (see :mod:`repro.telemetry.scrape`)."""
        slots = self._pool.workers
        return {
            "utilization": self.inflight / slots if slots else 0.0,
            "queue_depth": float(self.queue_length),
            "bandwidth_bytes_per_sec": self.bandwidth,
            "bytes_total": self.total_bytes,
        }

    # ------------------------------------------------------------------
    # Fault injection (device slowdown)
    # ------------------------------------------------------------------
    def degrade(self, factor: float) -> None:
        """Fault-injection hook: run at ``factor`` of nominal speed --
        bandwidth scales down by ``factor``, per-op latency up by
        ``1 / factor``.  Applies to operations issued from now on."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("degrade factor must be in (0, 1]")
        self.bandwidth = self.nominal_bandwidth * factor
        self.op_latency = self.nominal_op_latency / factor

    def restore(self) -> None:
        """Return the device to nominal bandwidth and latency."""
        self.bandwidth = self.nominal_bandwidth
        self.op_latency = self.nominal_op_latency

    def _service_time(self, nbytes: float) -> float:
        return self.op_latency + nbytes / self.bandwidth

    def io(self, owner: Any, nbytes: float) -> Generator[Event, Any, None]:
        """Process generator: perform one I/O of ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        tracer = self._tracer
        aid = None
        if tracer.enabled:
            track = f"disk:{self.name}"
            aid = tracer.async_begin(
                self.env.now,
                "disk",
                f"io {owner_label(owner)}",
                track,
                nbytes=nbytes,
            )
            tracer.counter(
                self.env.now,
                self.name,
                track,
                queued=self.queue_length,
                inflight=self.inflight,
            )
        try:
            with self._pool.submit(owner=owner) as slot:
                yield slot
                yield self.env.timeout(self._service_time(nbytes))
                self.bytes_by_owner[owner] = (
                    self.bytes_by_owner.get(owner, 0.0) + nbytes
                )
                self.total_bytes += nbytes
        finally:
            if aid is not None:
                tracer.async_end(
                    self.env.now,
                    "disk",
                    f"io {owner_label(owner)}",
                    f"disk:{self.name}",
                    aid,
                )

    # Aliases to keep call sites readable.
    read = io
    write = io
