"""Simulated resource primitives used by the application models."""

from .base import Grant, Resource
from .cpu import CPU
from .disk import DiskIO
from .docbuffer import DocAccessOutcome, DocumentBuffer
from .lock import LockGrant, SyncLock
from .pool import EvictionOutcome, MemoryPool
from .threadpool import QueueFull, SlotGrant, ThreadPool

__all__ = [
    "CPU",
    "DiskIO",
    "DocAccessOutcome",
    "DocumentBuffer",
    "EvictionOutcome",
    "Grant",
    "LockGrant",
    "MemoryPool",
    "QueueFull",
    "Resource",
    "SlotGrant",
    "SyncLock",
    "ThreadPool",
]
