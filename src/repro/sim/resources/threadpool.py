"""Bounded worker pool with an admission queue.

Models application thread-pool resources: the InnoDB concurrency-control
admission queue, Apache's worker MPM (``MaxClients``), Solr's searcher
executor, ...  Workers are anonymous; a task submits, waits in FIFO order
for a free worker, runs, then releases the slot.

Optionally a pool can *reserve* workers per request class (used by the
DARC baseline, which dedicates cores/workers to short request classes).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional

from .base import Grant, Resource

if TYPE_CHECKING:  # pragma: no cover
    from ..environment import Environment


class SlotGrant(Grant):
    """Grant event for a worker slot."""

    __slots__ = ("klass",)

    def __init__(
        self, env: "Environment", pool: "ThreadPool", owner: Any, klass: str
    ) -> None:
        super().__init__(env, pool, owner)
        self.klass = klass


class QueueFull(Exception):
    """Raised by :meth:`ThreadPool.submit` when the admission queue is full."""


class ThreadPool(Resource):
    """Fixed worker pool with FIFO admission queue and class reservations.

    Fault-injection hooks: :meth:`resize` / :meth:`degrade` /
    :meth:`restore` shrink or regrow the live worker count mid-run
    (running grants are never preempted).
    """

    trace_cat = "tpool"

    def __init__(
        self,
        env: "Environment",
        name: str,
        workers: int,
        queue_capacity: Optional[int] = None,
        traced: bool = True,
    ) -> None:
        """
        Args:
            workers: number of concurrent slots.
            queue_capacity: maximum queued submissions; ``None`` = unbounded.
                A full queue makes :meth:`submit` raise :class:`QueueFull`
                (the application decides whether that means HTTP 503, a
                client error, etc.).
            traced: set False for pools used as internal machinery of a
                coarser-grained resource (CPU time slices, disk op queues)
                so they do not flood the trace; the owning resource emits
                its own spans instead.
        """
        super().__init__(env, name, traced=traced)
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers
        #: Nominal worker count; :meth:`degrade`/:meth:`restore` move
        #: :attr:`workers` relative to this.
        self.nominal_workers = workers
        self.queue_capacity = queue_capacity
        self._running: List[SlotGrant] = []
        self._waiters: Deque[SlotGrant] = deque()
        #: class-group (tuple of class names) -> reserved worker count
        #: (only those classes may use the reserved workers).
        self._reservations: Dict[tuple, int] = {}
        self.total_wait_time = 0.0
        self.total_busy_time = 0.0

    # ------------------------------------------------------------------
    # Class reservations (DARC-style)
    # ------------------------------------------------------------------
    def reserve(self, klass, workers: int) -> None:
        """Dedicate ``workers`` slots to a request class (or class group).

        ``klass`` may be a single class name or an iterable of names that
        share one reservation.
        """
        if workers < 0:
            raise ValueError("reserved workers must be non-negative")
        group = (klass,) if isinstance(klass, str) else tuple(klass)
        total = sum(self._reservations.values()) - self._reservations.get(
            group, 0
        )
        if total + workers > self.workers:
            raise ValueError("cannot reserve more workers than exist")
        if workers == 0:
            self._reservations.pop(group, None)
        else:
            self._reservations[group] = workers
        # Loosening a reservation can make queued grants eligible.
        self._dispatch()

    def clear_reservations(self) -> None:
        self._reservations.clear()
        self._dispatch()

    # ------------------------------------------------------------------
    # Fault injection (worker loss)
    # ------------------------------------------------------------------
    def resize(self, workers: int) -> None:
        """Set the live worker count (fault injection / elasticity).

        Shrinking never preempts: grants already running keep their
        slots until release, and no new grant starts while the active
        count is at or above the new size.  Growing dispatches queued
        grants immediately.  Reservations are left untouched; a shrink
        below the reserved total just means reservations cannot all be
        honored until the pool is restored.
        """
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers
        self._dispatch()

    def degrade(self, factor: float) -> None:
        """Fault-injection hook: lose workers down to ``factor`` of
        nominal (at least one survives); see :meth:`resize`."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("degrade factor must be in (0, 1]")
        self.resize(max(1, int(round(self.nominal_workers * factor))))

    def restore(self) -> None:
        """Return to the nominal worker count, dispatching any backlog."""
        self.resize(self.nominal_workers)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def running(self) -> List[SlotGrant]:
        return list(self._running)

    @property
    def active(self) -> int:
        return len(self._running)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def idle_workers(self) -> int:
        return self.workers - len(self._running)

    def telemetry_snapshot(self) -> dict:
        """Scrape-friendly state (see :mod:`repro.telemetry.scrape`)."""
        return {
            "utilization": len(self._running) / self.workers
            if self.workers else 0.0,
            "queue_depth": float(len(self._waiters)),
            "workers": float(self.workers),
            "wait_seconds_total": self.total_wait_time,
            "busy_seconds_total": self.total_busy_time,
        }

    def _reserved_headroom(self, klass: str) -> int:
        """Workers that must stay free for *other* classes' reservations."""
        headroom = 0
        for group, reserved in self._reservations.items():
            if klass in group:
                continue
            in_use = sum(1 for g in self._running if g.klass in group)
            headroom += max(0, reserved - in_use)
        return headroom

    def _can_run(self, grant: SlotGrant) -> bool:
        idle = self.idle_workers
        if idle <= 0:
            return False
        return idle > self._reserved_headroom(grant.klass)

    # ------------------------------------------------------------------
    # Submit / release
    # ------------------------------------------------------------------
    def submit(self, owner: Any = None, klass: str = "default") -> SlotGrant:
        """Request a worker slot; returns a grant event to yield on.

        Raises :class:`QueueFull` if the admission queue is at capacity.
        """
        if (
            self.queue_capacity is not None
            and len(self._waiters) >= self.queue_capacity
        ):
            raise QueueFull(
                f"{self.name}: admission queue full "
                f"({len(self._waiters)}/{self.queue_capacity})"
            )
        grant = SlotGrant(self.env, self, owner, klass)
        self._waiters.append(grant)
        if self._traced:
            self._trace_wait_begin(grant, klass=klass)
            self._trace_depths(
                queued=len(self._waiters), active=len(self._running)
            )
        self._dispatch()
        return grant

    def _dispatch(self) -> None:
        """Start queued grants; FIFO, but reservations may let later grants
        of a reserved class jump over blocked unreserved ones."""
        if not self._reservations:
            # Pure FIFO fast path (the overwhelmingly common case): no
            # headroom math, no deque copy -- pop heads while slots and
            # waiters remain.  Grant order is identical to the general
            # loop below.
            waiters = self._waiters
            running = self._running
            now = self.env.now
            while waiters and len(running) < self.workers:
                grant = waiters.popleft()
                running.append(grant)
                self.total_wait_time += now - grant.request_time
                if self._traced:
                    self._trace_granted(grant, klass=grant.klass)
                    self._trace_depths(
                        queued=len(waiters), active=len(running)
                    )
                grant._mark_granted()
            return
        progressed = True
        while progressed:
            progressed = False
            for grant in list(self._waiters):
                if self._can_run(grant):
                    self._waiters.remove(grant)
                    self._running.append(grant)
                    self.total_wait_time += self.env.now - grant.request_time
                    if self._traced:
                        self._trace_granted(grant, klass=grant.klass)
                        self._trace_depths(
                            queued=len(self._waiters),
                            active=len(self._running),
                        )
                    grant._mark_granted()
                    progressed = True
                    break

    def _close(self, grant: Grant) -> None:
        if grant in self._running:
            self._running.remove(grant)
            self.total_busy_time += grant.hold_time
            if self._traced:
                self._trace_released(grant)
                self._trace_depths(
                    queued=len(self._waiters), active=len(self._running)
                )
            self._dispatch()
            return
        try:
            self._waiters.remove(grant)  # type: ignore[arg-type]
        except ValueError:
            pass
        else:
            if self._traced:
                self._trace_abandoned(grant)
                self._trace_depths(
                    queued=len(self._waiters), active=len(self._running)
                )
