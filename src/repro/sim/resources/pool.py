"""Paged memory pool with LRU eviction.

Models application memory resources: the InnoDB buffer pool, Elasticsearch's
query cache and heap, Solr caches, ...  The model is aggregate: the pool
tracks how many pages each *owner* (a task, or a named shared working set)
has resident, and evicts from the least-recently-touched owners when a new
acquisition does not fit.

Contention shows up in two ways, matching the paper's case study:

* acquisitions that must evict are charged an eviction delay (the caller
  reports it via ``slow_by_resource``), and
* victims whose pages were evicted re-fault them later (lower hit ratio),
  inflating their service time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from .base import Resource

if TYPE_CHECKING:  # pragma: no cover
    from ..environment import Environment


@dataclass
class EvictionOutcome:
    """Result of a page acquisition."""

    #: Pages actually assigned to the requester (== requested).
    acquired: int
    #: Pages evicted from other owners to make room.
    evicted: int
    #: Pages taken from the free list (no eviction needed).
    from_free: int
    #: Owners whose pages were evicted, with counts.
    victims: Dict[Any, int]

    @property
    def eviction_ratio(self) -> float:
        return self.evicted / self.acquired if self.acquired else 0.0


class MemoryPool(Resource):
    """A fixed-capacity paged pool with per-owner LRU eviction.

    Traced events: an instant per acquisition that forced evictions
    (with the victim breakdown) and an occupancy/free-pages counter at
    every acquire/release.

    Fault-injection hooks: :meth:`degrade` shrinks
    :attr:`capacity_pages` mid-run (evicting overflow immediately, per
    the active eviction strategy); :meth:`restore` returns to nominal.
    """

    trace_cat = "mem"

    def __init__(
        self,
        env: "Environment",
        name: str,
        capacity_pages: int,
        evict_page_cost: float = 0.0001,
        eviction: str = "lru",
    ) -> None:
        """
        Args:
            capacity_pages: total pool size in pages.
            evict_page_cost: simulated seconds to evict one page (writeback
                plus replacement bookkeeping); callers multiply by the number
                of evictions to charge the acquiring task.
            eviction: victim selection among owners.  ``"lru"`` drains the
                least-recently-touched owner first; ``"proportional"``
                spreads evictions across owners by their resident share,
                approximating page-level LRU where a streaming scan evicts
                everyone's pages (buffer-pool thrashing).
        """
        super().__init__(env, name)
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        if eviction not in ("lru", "proportional"):
            raise ValueError(f"unknown eviction strategy {eviction!r}")
        self.capacity_pages = capacity_pages
        #: Nominal capacity; :meth:`degrade`/:meth:`restore` move
        #: :attr:`capacity_pages` relative to this.
        self.nominal_capacity_pages = capacity_pages
        self.evict_page_cost = evict_page_cost
        self.eviction = eviction
        #: owner -> resident page count, in LRU order (oldest first).
        self._resident: "OrderedDict[Any, int]" = OrderedDict()
        #: Cumulative counters for contention-level computation.
        self.total_acquired = 0
        self.total_evicted = 0
        self.total_released = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def used_pages(self) -> int:
        return sum(self._resident.values())

    @property
    def free_pages(self) -> int:
        return self.capacity_pages - self.used_pages

    def resident_pages(self, owner: Any) -> int:
        return self._resident.get(owner, 0)

    def owners(self) -> List[Any]:
        return list(self._resident.keys())

    def occupancy(self) -> float:
        return self.used_pages / self.capacity_pages

    def telemetry_snapshot(self) -> dict:
        """Scrape-friendly state (see :mod:`repro.telemetry.scrape`)."""
        return {
            "utilization": self.occupancy(),
            "capacity_pages": float(self.capacity_pages),
            "free_pages": float(self.free_pages),
            "acquired_pages_total": float(self.total_acquired),
            "evicted_pages_total": float(self.total_evicted),
            "released_pages_total": float(self.total_released),
        }

    # ------------------------------------------------------------------
    # Fault injection (capacity loss)
    # ------------------------------------------------------------------
    def set_capacity(self, capacity_pages: int) -> int:
        """Resize the pool (fault injection / elasticity); returns the
        number of pages evicted to fit the new capacity.

        Shrinking below current occupancy evicts the overflow
        immediately using the pool's eviction strategy (no owner is
        protected -- a hardware-level capacity loss does not honor
        pinning).
        """
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        self.capacity_pages = capacity_pages
        overflow = self.used_pages - capacity_pages
        evicted = 0
        if overflow > 0:
            evicted = self._evict(overflow, requester=None, protected=())
            if self._traced:
                self._trace_depths(used=self.used_pages, free=self.free_pages)
        return evicted

    def degrade(self, factor: float) -> None:
        """Fault-injection hook: shrink to ``factor`` of nominal
        capacity (at least one page survives); see :meth:`set_capacity`."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("degrade factor must be in (0, 1]")
        self.set_capacity(max(1, int(round(self.nominal_capacity_pages * factor))))

    def restore(self) -> None:
        """Return to nominal capacity (evicted pages re-fault lazily)."""
        self.set_capacity(self.nominal_capacity_pages)

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------
    def touch(self, owner: Any) -> None:
        """Refresh an owner's recency without changing its page count."""
        if owner in self._resident:
            self._resident.move_to_end(owner)

    def acquire(
        self, owner: Any, pages: int, protected: Tuple[Any, ...] = ()
    ) -> EvictionOutcome:
        """Assign ``pages`` pages to ``owner``, evicting LRU victims if needed.

        A single owner may acquire at most the pool capacity; a request
        larger than the pool is clamped (the overflow continuously churns,
        which callers model by acquiring in chunks).

        Args:
            protected: owners that must not be evicted (e.g. the requester's
                own pages, pinned system pages).
        """
        if pages < 0:
            raise ValueError("pages must be non-negative")
        pages = min(pages, self.capacity_pages)
        from_free = min(pages, self.free_pages)
        need_evict = pages - from_free

        victims: Dict[Any, int] = {}
        evicted = 0
        if need_evict > 0:
            evicted = self._evict(need_evict, requester=owner, protected=protected)
            # _evict records per-victim counts into its return; recompute here
            victims = self._last_victims
            # If the pool is too pinned to evict enough, clamp the grant.
            pages = from_free + evicted

        if pages > 0:
            self._resident[owner] = self._resident.get(owner, 0) + pages
            self._resident.move_to_end(owner)
        self.total_acquired += pages
        if self._traced:
            from ...obs.tracer import owner_label

            if evicted > 0:
                self._tracer.instant(
                    self.env.now,
                    "mem",
                    f"evict for {owner_label(owner)}",
                    self._track,
                    pages=pages,
                    evicted=evicted,
                    victims={
                        owner_label(victim): count
                        for victim, count in victims.items()
                    },
                )
            self._trace_depths(
                used=self.used_pages, free=self.free_pages
            )
        return EvictionOutcome(
            acquired=pages, evicted=evicted, from_free=from_free, victims=victims
        )

    def _evict(
        self, pages: int, requester: Any, protected: Tuple[Any, ...]
    ) -> int:
        """Evict up to ``pages`` pages per the strategy; returns count."""
        self._last_victims = {}
        blocked = set(protected)
        blocked.add(requester)
        if self.eviction == "proportional":
            evicted = self._evict_proportional(pages, blocked)
        else:
            evicted = self._evict_lru(pages, blocked)
        self.total_evicted += evicted
        return evicted

    def _take_from(self, victim: Any, take: int) -> None:
        have = self._resident[victim]
        if take >= have:
            del self._resident[victim]
        else:
            self._resident[victim] = have - take
        self._last_victims[victim] = self._last_victims.get(victim, 0) + take

    def _evict_lru(self, pages: int, blocked: set) -> int:
        evicted = 0
        # Iterate owners oldest-first; snapshot because we mutate.
        for victim in list(self._resident.keys()):
            if evicted >= pages:
                break
            if victim in blocked:
                continue
            take = min(self._resident[victim], pages - evicted)
            if take <= 0:
                continue
            self._take_from(victim, take)
            evicted += take
        return evicted

    def _evict_proportional(self, pages: int, blocked: set) -> int:
        """Spread evictions across victims by resident share."""
        evicted = 0
        while evicted < pages:
            victims = [
                (owner, have)
                for owner, have in self._resident.items()
                if owner not in blocked and have > 0
            ]
            if not victims:
                break
            pool = sum(have for _, have in victims)
            need = pages - evicted
            round_total = 0
            for owner, have in victims:
                share = max(1, int(round(need * have / pool)))
                take = min(have, share, pages - evicted - round_total)
                if take <= 0:
                    continue
                self._take_from(owner, take)
                round_total += take
            if round_total == 0:
                break
            evicted += round_total
        return evicted

    def release(self, owner: Any, pages: Optional[int] = None) -> int:
        """Release ``pages`` (default: all) of an owner's resident pages."""
        have = self._resident.get(owner, 0)
        if have == 0:
            return 0
        take = have if pages is None else min(pages, have)
        if take == have:
            del self._resident[owner]
        else:
            self._resident[owner] = have - take
        self.total_released += take
        if self._traced:
            self._trace_depths(used=self.used_pages, free=self.free_pages)
        return take

    def _close(self, grant: Any) -> None:  # pragma: no cover - unused
        raise NotImplementedError("MemoryPool uses acquire/release directly")
