"""Multi-core CPU with sliced round-robin sharing.

Service is approximated by chopping each task's CPU demand into short
slices and queueing the slices FCFS on a fixed number of cores.  Long
CPU-bound tasks therefore inflate everyone's latency through queueing --
the behaviour behind the paper's case 12 (Elasticsearch long-running
queries hogging CPU) -- while short tasks still interleave, like an OS
scheduler would let them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator

from ...obs.tracer import owner_label
from ..events import Event
from .threadpool import ThreadPool

if TYPE_CHECKING:  # pragma: no cover
    from ..environment import Environment


class CPU:
    """``cores`` cores shared via time slicing.

    Traced events: one async span per :meth:`execute` call (slice-level
    queueing is internal machinery and stays untraced) plus a run-queue
    depth counter sampled at execute boundaries.

    Fault-injection hooks: :meth:`degrade` offlines cores mid-run
    (slices already running finish; at least one core survives);
    :meth:`restore` brings them back.
    """

    def __init__(
        self,
        env: "Environment",
        name: str,
        cores: int,
        slice_time: float = 0.002,
    ) -> None:
        self.env = env
        self.name = name
        self.cores = cores
        #: Nominal core count; :meth:`degrade`/:meth:`restore` move
        #: :attr:`cores` relative to this.
        self.nominal_cores = cores
        self.slice_time = slice_time
        self._pool = ThreadPool(env, f"{name}.cores", cores, traced=False)
        self._tracer = env.tracer
        #: owner -> cumulative CPU seconds consumed.
        self.usage: Dict[Any, float] = {}

    @property
    def run_queue_length(self) -> int:
        """Slices waiting for a core right now."""
        return self._pool.queue_length

    @property
    def busy_cores(self) -> int:
        return self._pool.active

    def consumed(self, owner: Any) -> float:
        return self.usage.get(owner, 0.0)

    def telemetry_snapshot(self) -> dict:
        """Scrape-friendly state (see :mod:`repro.telemetry.scrape`)."""
        return {
            "utilization": self.busy_cores / self.cores
            if self.cores else 0.0,
            "queue_depth": float(self.run_queue_length),
            "cores": float(self.cores),
            "cpu_seconds_total": sum(self.usage.values()),
        }

    # ------------------------------------------------------------------
    # Fault injection (core loss)
    # ------------------------------------------------------------------
    def degrade(self, factor: float) -> None:
        """Fault-injection hook: offline cores down to ``factor`` of
        nominal (at least one survives).  Slices already on a core run
        to completion; queued slices wait for the surviving cores."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("degrade factor must be in (0, 1]")
        self.cores = max(1, int(round(self.nominal_cores * factor)))
        self._pool.resize(self.cores)

    def restore(self) -> None:
        """Bring offlined cores back; queued slices dispatch immediately."""
        self.cores = self.nominal_cores
        self._pool.resize(self.cores)

    def execute(self, owner: Any, cpu_time: float) -> Generator[Event, Any, None]:
        """Process generator: burn ``cpu_time`` seconds of CPU, time-sliced.

        Usage is charged slice by slice so an interrupt mid-way leaves the
        accounting consistent (the task pays for what it actually ran).
        """
        if cpu_time < 0:
            raise ValueError("cpu_time must be non-negative")
        tracer = self._tracer
        aid = None
        if tracer.enabled:
            track = f"cpu:{self.name}"
            aid = tracer.async_begin(
                self.env.now,
                "cpu",
                f"execute {owner_label(owner)}",
                track,
                cpu_time=cpu_time,
            )
            tracer.counter(
                self.env.now,
                self.name,
                track,
                run_queue=self.run_queue_length,
                busy=self.busy_cores,
            )
        done = 0.0
        try:
            remaining = cpu_time
            while remaining > 1e-12:
                chunk = min(self.slice_time, remaining)
                with self._pool.submit(owner=owner) as slot:
                    yield slot
                    yield self.env.timeout(chunk)
                    self.usage[owner] = self.usage.get(owner, 0.0) + chunk
                    done += chunk
                remaining -= chunk
        finally:
            if aid is not None:
                tracer.async_end(
                    self.env.now,
                    "cpu",
                    f"execute {owner_label(owner)}",
                    f"cpu:{self.name}",
                    aid,
                    consumed=round(done, 9),
                )
