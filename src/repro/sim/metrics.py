"""Request metrics: completion records, throughput windows, percentiles.

The collector is shared by the workload driver (which records outcomes),
overload detectors (which watch recent windows), and the experiment harness
(which computes the normalized series the paper's figures report).
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple


class RequestStatus(enum.Enum):
    """Terminal outcome of a request."""

    COMPLETED = "completed"
    #: Cancelled by an overload controller and *not* retried to completion.
    CANCELLED = "cancelled"
    #: Rejected before execution (admission control) or dropped mid-flight.
    DROPPED = "dropped"
    #: Exceeded its SLO deadline and was abandoned by the client.
    TIMED_OUT = "timed_out"


@dataclass(slots=True)
class RequestRecord:
    """Terminal record for one request."""

    request_id: int
    op_name: str
    client_id: str
    arrival_time: float
    finish_time: float
    status: RequestStatus
    #: Number of times the request was cancelled and re-executed.
    retries: int = 0
    #: Free-form tags (e.g. which resource the culprit monopolized).
    tags: Dict[str, object] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        """End-to-end sojourn time (arrival to terminal outcome)."""
        return self.finish_time - self.arrival_time

    @property
    def completed(self) -> bool:
        return self.status is RequestStatus.COMPLETED


def percentile(values: Sequence[float], pct: float) -> float:
    """Exact percentile by linear interpolation (numpy-compatible).

    Returns ``nan`` for an empty sequence.  An out-of-range ``pct``
    raises even then -- a bad percentile is a caller bug regardless of
    how many samples happen to be in the window.
    """
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    if not values:
        return float("nan")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    # Interpolate as base + delta*frac: exact when both points are equal
    # (a*(1-f) + b*f can drift by one ulp for tiny magnitudes).
    return ordered[low] + (ordered[high] - ordered[low]) * frac


def window_count(end_time: float, window: float) -> int:
    """Number of fixed windows covering ``[0, end_time]`` (ceil, min 1).

    The single window convention shared by every per-window series in
    the repo (:func:`completion_windows`, the telemetry scraper, fault
    recovery timelines): the last window may be partial, and a series
    always has at least one window.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    return max(1, int(math.ceil(end_time / window)))


def completion_windows(
    records: Sequence[RequestRecord], window: float, end_time: float
) -> List[Tuple[float, List[float]]]:
    """Bucket completed records by finish time into fixed windows.

    Returns ``[(window_end, [latencies...]), ...]`` covering
    ``[0, end_time]`` with :func:`window_count` windows.  Window ``i``
    spans ``[i*window, (i+1)*window)`` -- a completion exactly on a
    boundary lands in the *following* window -- except the last window,
    which is closed on the right (records finishing at or after the
    nominal end are clamped into it, so no completion is ever dropped).

    This is the one windowing helper shared by
    :meth:`MetricsCollector.throughput_series`, the harness timeline
    (fault recovery plots, ``fig*`` series), and the telemetry layer,
    so per-window numbers cannot drift between consumers.
    """
    n_windows = window_count(end_time, window)
    buckets: List[List[float]] = [[] for _ in range(n_windows)]
    for record in records:
        if not record.completed:
            continue
        idx = min(int(record.finish_time // window), n_windows - 1)
        buckets[idx].append(record.latency)
    return [
        ((i + 1) * window, buckets[i]) for i in range(n_windows)
    ]


class MetricsCollector:
    """Accumulates terminal request records for a simulation run."""

    def __init__(self) -> None:
        self.records: List[RequestRecord] = []
        self._offered = 0
        #: Offered counts per operation name (only populated by callers
        #: that pass ``op_name``; the total stays authoritative).
        self.offered_by_op: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def note_offered(self, n: int = 1, op_name: Optional[str] = None) -> None:
        """Count requests offered to the system (including rejected ones)."""
        self._offered += n
        if op_name is not None:
            self.offered_by_op[op_name] = (
                self.offered_by_op.get(op_name, 0) + n
            )

    def record(self, record: RequestRecord) -> None:
        self.records.append(record)

    def trimmed(self, cutoff: float) -> "MetricsCollector":
        """A collector view excluding records finishing before ``cutoff``.

        Used by the harness to drop the warm-up transient: the offered
        count is carried over unchanged (offered load does not stop
        during warm-up), while only records with ``finish_time >=
        cutoff`` are kept.  ``cutoff <= 0`` returns ``self`` (no copy).
        """
        if cutoff <= 0:
            return self
        view = MetricsCollector()
        view.note_offered(self.offered)
        view.offered_by_op = dict(self.offered_by_op)
        for record in self.records:
            if record.finish_time >= cutoff:
                view.record(record)
        return view

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def offered(self) -> int:
        return self._offered

    def completed_records(
        self, op_name: Optional[str] = None
    ) -> List[RequestRecord]:
        return [
            r
            for r in self.records
            if r.completed and (op_name is None or r.op_name == op_name)
        ]

    def throughput(
        self, duration: float, op_name: Optional[str] = None
    ) -> float:
        """Completed requests per second over ``duration``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return len(self.completed_records(op_name)) / duration

    def goodput(self, duration: float, slo: float) -> float:
        """Completions under the latency SLO, per second."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        good = sum(
            1 for r in self.records if r.completed and r.latency <= slo
        )
        return good / duration

    def latency_percentile(
        self, pct: float, op_name: Optional[str] = None
    ) -> float:
        """Latency percentile over completed requests."""
        lats = [r.latency for r in self.completed_records(op_name)]
        return percentile(lats, pct)

    def mean_latency(self, op_name: Optional[str] = None) -> float:
        lats = [r.latency for r in self.completed_records(op_name)]
        return sum(lats) / len(lats) if lats else float("nan")

    def drop_rate(self) -> float:
        """Fraction of terminal requests that were dropped/cancelled/timed out.

        This matches the paper's "drop rate": a request that was cancelled
        but successfully re-executed counts as completed, not dropped.
        """
        terminal = len(self.records)
        if terminal == 0:
            return 0.0
        dropped = sum(1 for r in self.records if not r.completed)
        return dropped / terminal

    def status_counts(self) -> Dict[RequestStatus, int]:
        counts: Dict[RequestStatus, int] = {s: 0 for s in RequestStatus}
        for r in self.records:
            counts[r.status] += 1
        return counts

    def throughput_series(
        self, window: float, end_time: float
    ) -> List[Tuple[float, float]]:
        """(window_end, completions/sec) series over [0, end_time]."""
        return [
            (end, len(latencies) / window)
            for end, latencies in completion_windows(
                self.records, window, end_time
            )
        ]


class SlidingWindow:
    """Recent-completions window used by online overload detectors.

    Keeps (finish_time, latency) pairs within a trailing horizon; supports
    cheap throughput and tail-latency queries over that horizon.

    Boundary convention: the window is *closed* on both ends -- an entry
    whose finish time is exactly ``now - horizon`` is still counted, and
    only entries strictly older are evicted.  Detector thresholds were
    calibrated against this convention (tests/property pin it down), so
    do not "fix" the eviction comparison to ``<=``.
    """

    def __init__(self, horizon: float) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = horizon
        self._entries: Deque[Tuple[float, float]] = deque()

    def observe(self, finish_time: float, latency: float) -> None:
        self._entries.append((finish_time, latency))
        self._evict(finish_time)

    def _evict(self, now: float) -> None:
        cutoff = now - self.horizon
        entries = self._entries
        while entries and entries[0][0] < cutoff:
            entries.popleft()

    def count(self, now: float) -> int:
        self._evict(now)
        return len(self._entries)

    def throughput(self, now: float) -> float:
        self._evict(now)
        return len(self._entries) / self.horizon

    def latency_percentile(self, now: float, pct: float) -> float:
        self._evict(now)
        return percentile([lat for _, lat in self._entries], pct)

    def mean_latency(self, now: float) -> float:
        self._evict(now)
        if not self._entries:
            return float("nan")
        return sum(lat for _, lat in self._entries) / len(self._entries)


@dataclass
class Summary:
    """Condensed result of one simulation run (one experiment data point)."""

    duration: float
    throughput: float
    p50_latency: float
    p99_latency: float
    mean_latency: float
    drop_rate: float
    completed: int
    dropped: int
    cancelled: int
    timed_out: int

    @classmethod
    def from_collector(
        cls, collector: MetricsCollector, duration: float
    ) -> "Summary":
        counts = collector.status_counts()
        return cls(
            duration=duration,
            throughput=collector.throughput(duration),
            p50_latency=collector.latency_percentile(50),
            p99_latency=collector.latency_percentile(99),
            mean_latency=collector.mean_latency(),
            drop_rate=collector.drop_rate(),
            completed=counts[RequestStatus.COMPLETED],
            dropped=counts[RequestStatus.DROPPED],
            cancelled=counts[RequestStatus.CANCELLED],
            timed_out=counts[RequestStatus.TIMED_OUT],
        )
