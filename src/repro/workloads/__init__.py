"""Workload generation and the request-lifecycle driver."""

from .dag import DagSpec, EdgeSpec, RequestClass, ServiceSpec, dag_storm
from .driver import Driver
from .sessions import ConnectionSource
from .spec import (
    ClosedLoopSource,
    MixEntry,
    OpenLoopSource,
    PeriodicOp,
    ScheduledOp,
    Workload,
)

__all__ = [
    "ClosedLoopSource",
    "ConnectionSource",
    "DagSpec",
    "Driver",
    "EdgeSpec",
    "MixEntry",
    "OpenLoopSource",
    "PeriodicOp",
    "RequestClass",
    "ScheduledOp",
    "ServiceSpec",
    "Workload",
    "dag_storm",
]
