"""Workload generation and the request-lifecycle driver."""

from .driver import Driver
from .sessions import ConnectionSource
from .spec import (
    ClosedLoopSource,
    MixEntry,
    OpenLoopSource,
    PeriodicOp,
    ScheduledOp,
    Workload,
)

__all__ = [
    "ClosedLoopSource",
    "ConnectionSource",
    "Driver",
    "MixEntry",
    "OpenLoopSource",
    "PeriodicOp",
    "ScheduledOp",
    "Workload",
]
