"""Connection-scoped cancellable tasks (paper §3.1, Figure 7).

The paper's MySQL integration groups *all requests from one client
connection* into a single cancellable task (``createCancel(thd->id)`` at
connect, ``freeCancel`` at disconnect): resource usage accumulates per
connection and a cancellation kills whatever the connection is doing.

:class:`ConnectionSource` provides that granularity on the workload
side: a fixed population of connections, each registering one
cancellable task for its lifetime and running a closed loop of
operations under it.  A cancellation unwinds the in-flight operation and
drops the connection; the client reconnects (with a fresh,
non-cancellable task, per the fairness rule) after ``reconnect_delay``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import TYPE_CHECKING, List, Optional

from ..core.types import CancelSignal, DropRequest, TaskKind
from ..sim.errors import Interrupt
from ..sim.metrics import RequestRecord, RequestStatus
from .spec import MixEntry

if TYPE_CHECKING:  # pragma: no cover
    from .driver import Driver

_record_seq = count(1)


@dataclass
class ConnectionSource:
    """A population of long-lived connections, one cancellable task each."""

    connections: int
    mix: List[MixEntry]
    think_time: float = 0.0
    #: Delay before a cancelled connection reconnects.
    reconnect_delay: float = 0.1
    client_prefix: str = "conn"
    start_time: float = 0.0
    stop_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.connections <= 0:
            raise ValueError("connections must be positive")
        if not self.mix:
            raise ValueError("mix must not be empty")
        if self.reconnect_delay < 0:
            raise ValueError("reconnect_delay must be non-negative")

    def process(self, driver: "Driver"):
        for i in range(self.connections):
            driver.env.process(self._connection(driver, i))
        return
        yield  # pragma: no cover - generator protocol

    def _stopped(self, env) -> bool:
        return self.stop_time is not None and env.now >= self.stop_time

    def _connection(self, driver: "Driver", index: int):
        env = driver.env
        controller = driver.controller
        client_id = f"{self.client_prefix}-{index}"
        rng = driver.app.rng.fork(f"session:{client_id}")
        weights = [m.weight for m in self.mix]
        if self.start_time > 0:
            yield env.timeout(self.start_time)
        reconnects = 0
        while not self._stopped(env):
            # One cancellable task for the whole connection (Figure 7);
            # after a cancellation the reconnected session is exempt from
            # further cancellations (fairness, §4).
            task = controller.create_cancel(
                key=client_id,
                kind=TaskKind.REQUEST,
                client_id=client_id,
                op_name="connection",
                cancellable=reconnects == 0,
            )
            inflight_op = None
            arrival = env.now
            try:
                while not self._stopped(env):
                    entry = rng.weighted_choice(self.mix, weights)
                    inflight_op = entry.factory()
                    driver.collector.note_offered()
                    arrival = env.now
                    try:
                        yield from driver.app.execute(task, inflight_op)
                    except DropRequest:
                        self._record(
                            driver, inflight_op, client_id, arrival,
                            RequestStatus.DROPPED, reconnects,
                        )
                        inflight_op = None
                        continue
                    self._record(
                        driver, inflight_op, client_id, arrival,
                        RequestStatus.COMPLETED, reconnects,
                    )
                    inflight_op = None
                    if self.think_time > 0:
                        yield env.timeout(rng.exponential(self.think_time))
            except Interrupt as exc:
                if not isinstance(exc.cause, CancelSignal):
                    raise
                # The whole connection was cancelled: an in-flight op (if
                # any) is lost; a cancellation during think time loses no
                # work.  The client reconnects after a delay either way.
                if inflight_op is not None:
                    self._record(
                        driver, inflight_op, client_id, arrival,
                        RequestStatus.CANCELLED, reconnects,
                    )
                reconnects += 1
                controller.free_cancel(task)
                yield env.timeout(self.reconnect_delay)
                continue
            finally:
                controller.free_cancel(task)

    def _record(self, driver, op, client_id, arrival, status, retries):
        record = RequestRecord(
            request_id=next(_record_seq),
            op_name=op.name,
            client_id=client_id,
            arrival_time=arrival,
            finish_time=driver.env.now,
            status=status,
            retries=retries,
        )
        driver.collector.record(record)
        driver.controller.observe_completion(record)
