"""Microservice-DAG workload specifications.

A :class:`DagSpec` describes a small service mesh: every request enters
at one *entry* service and fans out across a directed acyclic graph of
simulated services (each service a full app-node simulation from
:mod:`repro.apps`).  Edges carry the RPC structure: a request crossing
an edge issues ``fanout`` shards at the target, and at most
``concurrency`` shards may be outstanding per edge at once (queued
shards wait, FIFO).  A service's stage starts only once *all* its
parent stages finished (AND-join fan-in); the request completes when
every reachable service completed its stage.

Per-service work is described with a backend-neutral op vocabulary
(:data:`DAG_OPS`): ``point`` (light read), ``write`` (light update),
``scan`` (a heavy bulk pass sized by the request class's ``rows``).
The execution engine (:mod:`repro.cluster.mesh`) maps these onto the
backend's native handlers, exactly like the fleet tier's cluster ops.

Specs are plain JSON-able data (same contract as
:class:`~repro.cluster.spec.FleetSpec`): shard workers rebuild their
service nodes from the spec, which is what makes serial and sharded
mesh runs byte-identical.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Sequence, Tuple

from ..sim.rng import Rng

#: Backends a service may run (subset of repro.apps wired into the mesh).
DAG_BACKENDS = ("mysql", "postgres")

#: Backend-neutral per-service ops a request class may ask for.
DAG_OPS = ("point", "write", "scan")

#: Controllers the mesh can mount on every service.
DAG_CONTROLLERS = ("none", "atropos", "dagor", "autothrottle")


@dataclass(frozen=True)
class ServiceSpec:
    """One simulated service of the mesh."""

    name: str
    backend: str = "mysql"

    def __post_init__(self) -> None:
        if self.backend not in DAG_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; known: {DAG_BACKENDS}"
            )


@dataclass(frozen=True)
class EdgeSpec:
    """One RPC edge: ``source`` calls ``target``.

    ``fanout`` shards are issued at the target per crossing request;
    at most ``concurrency`` shards may be in flight on the edge.
    """

    source: str
    target: str
    fanout: int = 1
    concurrency: int = 16


@dataclass(frozen=True)
class RequestClass:
    """One traffic class: arrival process plus per-service ops.

    Exactly one of ``rate`` (open-loop Poisson) and ``period``
    (periodic, every ``period`` seconds from ``start``) must be
    positive.  ``ops`` maps every service name to one of
    :data:`DAG_OPS`; ``rows`` sizes this class's ``scan`` ops.
    ``users`` is the client-id population (DAGOR partitions admission
    by user level, so classes should span several users).
    """

    name: str
    ops: Tuple[Tuple[str, str], ...] = ()
    rate: float = 0.0
    period: float = 0.0
    start: float = 0.0
    rows: float = 0.0
    users: int = 32

    def __post_init__(self) -> None:
        if isinstance(self.ops, dict):
            object.__setattr__(
                self, "ops", tuple(sorted(self.ops.items()))
            )
        else:
            object.__setattr__(
                self, "ops", tuple(tuple(pair) for pair in self.ops)
            )

    def op_for(self, service: str) -> str:
        for name, op in self.ops:
            if name == service:
                return op
        raise KeyError(service)


@dataclass
class DagSpec:
    """Everything one mesh run needs (JSON-able, validated)."""

    services: List[ServiceSpec] = field(default_factory=list)
    edges: List[EdgeSpec] = field(default_factory=list)
    entry: str = ""
    classes: List[RequestClass] = field(default_factory=list)
    seed: int = 0
    duration: float = 24.0
    warmup: float = 4.0
    #: Mesh sync interval, simulated seconds: RPC shards produced by a
    #: parent stage in epoch ``k`` dispatch at the start of ``k + 1``,
    #: so cross-service coupling happens only at epoch boundaries.
    epoch: float = 0.25
    #: End-to-end SLO on a request's critical-path latency, seconds.
    slo_latency: float = 0.1
    slo_slack: float = 1.5
    #: Epochs past ``duration`` that drain in-flight requests (no new
    #: arrivals) so tail requests are not truncated by the run end.
    drain: float = 3.0

    # --- backend sensitivity (same regime as the fleet tier) ---
    tables: int = 4
    mysql_pages_per_light_op: int = 6
    mysql_miss_penalty: float = 0.02
    pg_bytes_per_row: float = 400.0

    # --- controller knobs carried by the spec (cache identity) ---
    #: DAGOR user levels per business-priority class.
    dagor_user_levels: int = 8
    #: Seconds between Autothrottle tower (slow-loop) adjustments.
    tower_period: float = 2.0

    #: Request classes the scenario considers true culprits; every
    #: other class is a victim for the p99/goodput accounting.
    expected_culprits: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.services = [
            s if isinstance(s, ServiceSpec) else ServiceSpec(**s)
            for s in self.services
        ]
        self.edges = [
            e if isinstance(e, EdgeSpec) else EdgeSpec(**e)
            for e in self.edges
        ]
        self.classes = [
            c if isinstance(c, RequestClass) else RequestClass(**c)
            for c in self.classes
        ]
        self.expected_culprits = tuple(self.expected_culprits)
        self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        problems: List[str] = []
        names = [s.name for s in self.services]
        if not self.services:
            problems.append("services must not be empty")
        if len(set(names)) != len(names):
            problems.append(f"duplicate service names: {names}")
        known = set(names)
        if self.entry not in known:
            problems.append(
                f"entry {self.entry!r} is not a declared service"
            )
        seen_edges = set()
        for edge in self.edges:
            if edge.source not in known or edge.target not in known:
                problems.append(
                    f"edge {edge.source!r}->{edge.target!r} references "
                    "an unknown service"
                )
            if edge.source == edge.target:
                problems.append(f"self-edge on {edge.source!r}")
            if (edge.source, edge.target) in seen_edges:
                problems.append(
                    f"duplicate edge {edge.source!r}->{edge.target!r}"
                )
            seen_edges.add((edge.source, edge.target))
            if edge.fanout < 1:
                problems.append(
                    f"edge {edge.source}->{edge.target}: fanout must be >= 1"
                )
            if edge.concurrency < 1:
                problems.append(
                    f"edge {edge.source}->{edge.target}: concurrency must "
                    "be >= 1"
                )
        order = self._topo_order_or_none()
        if order is None:
            problems.append(
                "service graph has a cycle (or edges into the entry)"
            )
        elif self.entry in known and set(order) != known:
            missing = sorted(known - set(order))
            problems.append(
                f"services unreachable from entry: {missing}"
            )
        if not self.classes:
            problems.append("classes must not be empty")
        class_names = [c.name for c in self.classes]
        if len(set(class_names)) != len(class_names):
            problems.append(f"duplicate class names: {class_names}")
        for cls in self.classes:
            prefix = f"class {cls.name!r}:"
            if (cls.rate > 0) == (cls.period > 0):
                problems.append(
                    f"{prefix} exactly one of rate/period must be positive"
                )
            if cls.start < 0:
                problems.append(f"{prefix} start must be >= 0")
            if cls.users < 1:
                problems.append(f"{prefix} users must be >= 1")
            ops = dict(cls.ops)
            if set(ops) != known:
                problems.append(
                    f"{prefix} ops must cover every service "
                    f"(got {sorted(ops)}, want {sorted(known)})"
                )
            for service, op in cls.ops:
                if op not in DAG_OPS:
                    problems.append(
                        f"{prefix} unknown op {op!r} for {service!r}; "
                        f"known: {DAG_OPS}"
                    )
            if "scan" in ops.values() and cls.rows <= 0:
                problems.append(
                    f"{prefix} scan ops need rows > 0"
                )
        for name in ("duration", "epoch", "slo_latency"):
            if getattr(self, name) <= 0:
                problems.append(f"{name} must be > 0")
        if not 0 <= self.warmup < self.duration:
            problems.append("warmup must be in [0, duration)")
        if self.epoch > self.duration:
            problems.append("epoch must not exceed duration")
        if self.drain < 0:
            problems.append("drain must be >= 0")
        if self.dagor_user_levels < 1:
            problems.append("dagor_user_levels must be >= 1")
        if self.tower_period <= 0:
            problems.append("tower_period must be > 0")
        for culprit in self.expected_culprits:
            if culprit not in class_names:
                problems.append(
                    f"expected culprit {culprit!r} is not a class"
                )
        if problems:
            raise ValueError("invalid DagSpec: " + "; ".join(problems))

    # ------------------------------------------------------------------
    # Graph structure
    # ------------------------------------------------------------------
    def _topo_order_or_none(self) -> "List[str] | None":
        """Kahn's algorithm seeded at the entry, spec order for ties."""
        children: Dict[str, List[str]] = {s.name: [] for s in self.services}
        indegree: Dict[str, int] = {s.name: 0 for s in self.services}
        for edge in self.edges:
            if edge.source in children and edge.target in indegree:
                children[edge.source].append(edge.target)
                indegree[edge.target] += 1
        if self.entry not in indegree or indegree[self.entry] != 0:
            return None
        frontier = [self.entry]
        order: List[str] = []
        while frontier:
            name = frontier.pop(0)
            order.append(name)
            for child in children[name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    frontier.append(child)
        remaining = [n for n, d in indegree.items() if d > 0]
        if remaining:
            return None
        return order

    def topo_order(self) -> List[str]:
        order = self._topo_order_or_none()
        assert order is not None  # validate() already ran
        return order

    def parents_of(self, service: str) -> List[int]:
        """Indices (into ``edges``) of this service's incoming edges."""
        return [
            i for i, e in enumerate(self.edges) if e.target == service
        ]

    def children_of(self, service: str) -> List[int]:
        """Indices (into ``edges``) of this service's outgoing edges."""
        return [
            i for i, e in enumerate(self.edges) if e.source == service
        ]

    def service_index(self, name: str) -> int:
        for i, s in enumerate(self.services):
            if s.name == name:
                return i
        raise KeyError(name)

    # ------------------------------------------------------------------
    # Epoch arithmetic (mirrors FleetSpec)
    # ------------------------------------------------------------------
    def epoch_count(self) -> int:
        """Epochs covering [0, duration + drain] (last may be short)."""
        import math

        total = self.duration + self.drain
        return max(1, math.ceil(total / self.epoch - 1e-9))

    def epoch_end(self, index: int) -> float:
        return min(self.duration + self.drain, (index + 1) * self.epoch)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DagSpec":
        return cls(**data)

    def with_overrides(self, **overrides: Any) -> "DagSpec":
        return replace(self, **overrides)


def build_arrivals(spec: DagSpec) -> List[Tuple[float, int, str, str]]:
    """Pre-materialize every request arrival at the entry service.

    Returns ascending ``(time, rid, class_name, client_id)`` tuples.
    Each class draws from its own forked rng stream
    (``dag:arrivals:<class>``), so adding a class never perturbs the
    others; request ids are assigned after the deterministic merge.
    """
    raw: List[Tuple[float, str, str]] = []
    for cls in spec.classes:
        rng = Rng(spec.seed).fork(f"dag:arrivals:{cls.name}")
        if cls.rate > 0:
            t = cls.start
            while True:
                t += rng.exponential(1.0 / cls.rate)
                if t >= spec.duration:
                    break
                user = rng.randint(0, cls.users - 1)
                raw.append((t, cls.name, f"{cls.name}-{user}"))
        else:
            t = cls.start
            k = 0
            while t < spec.duration:
                raw.append((t, cls.name, f"{cls.name}-{k % cls.users}"))
                t += cls.period
                k += 1
    raw.sort(key=lambda item: (item[0], item[1], item[2]))
    return [
        (t, rid, name, client)
        for rid, (t, name, client) in enumerate(raw)
    ]


def dag_storm(
    n_leaves: int = 2,
    backends: Sequence[str] = ("mysql", "postgres"),
    **overrides: Any,
) -> DagSpec:
    """The standard cross-service overload scenario.

    A ``gateway`` fans every request out to ``n_leaves`` leaf services
    (AND-join fan-in).  A light open-loop ``browse`` class is the
    victim population; a periodic ``analytics`` class runs a cheap
    gateway op but lands a heavy ``scan`` on every leaf -- the culprit
    whose damage lives on *different services* than the victims'
    critical path bottleneck.
    """
    if n_leaves < 1:
        raise ValueError("n_leaves must be >= 1")
    services = [ServiceSpec("gateway", "mysql")] + [
        ServiceSpec(f"leaf-{i}", backends[i % len(backends)])
        for i in range(n_leaves)
    ]
    # Concurrency must clear arrival_rate * epoch with headroom: edge
    # slots release only at epoch boundaries, so a tighter limit
    # throttles the victims at the mesh layer instead of the services.
    edges = [
        EdgeSpec("gateway", f"leaf-{i}", fanout=1, concurrency=160)
        for i in range(n_leaves)
    ]
    every = lambda op: {s.name: op for s in services}  # noqa: E731
    browse = RequestClass(
        name="browse", ops=every("point"), rate=220.0, users=64
    )
    analytics_ops = every("scan")
    analytics_ops["gateway"] = "write"
    analytics = RequestClass(
        name="analytics",
        ops=analytics_ops,
        period=4.0,
        start=6.0,
        rows=4e5,
        users=4,
    )
    return DagSpec(
        services=services,
        edges=edges,
        entry="gateway",
        classes=[browse, analytics],
        expected_culprits=("analytics",),
        **overrides,
    )
