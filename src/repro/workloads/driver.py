"""Workload driver: request lifecycle with cancellation and re-execution.

The driver plays the role of the benchmark clients (sysbench, Rally, ...)
plus the application's connection layer: it submits operations as
open-loop arrivals, runs each through the controller's admission hook,
registers a cancellable task, executes the application handler, and
handles the three unwind paths -- completion, controller drop, and
cancellation (with the controller's re-execution gate deciding retry vs
drop).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Tuple

from ..core.controller import BaseController
from ..core.types import CancelSignal, DropRequest, DropSignal, TaskKind
from ..sim.errors import Interrupt
from ..sim.events import Event
from ..sim.metrics import MetricsCollector, RequestRecord, RequestStatus
from .spec import OperationFactory, Workload

if TYPE_CHECKING:  # pragma: no cover
    from ..apps.base import Application, Operation
    from ..sim.environment import Environment


class Driver:
    """Drives one application with one workload under one controller."""

    def __init__(
        self,
        env: "Environment",
        app: "Application",
        controller: BaseController,
        collector: Optional[MetricsCollector] = None,
    ) -> None:
        self.env = env
        self.app = app
        self.controller = controller
        self.collector = collector or MetricsCollector()
        self._req_seq = 1
        self._tracer = env.tracer
        #: Consolidated per-event hook switch, mirrored from the
        #: environment (see Environment.hooks_enabled): one cached bool
        #: instead of a tracer attribute chain per request.
        self._hooked = env.hooks_enabled
        #: Requests currently in flight (for diagnostics).
        self.inflight = 0
        #: The workload started via :meth:`run_workload` (exposed so
        #: :mod:`repro.faults` can reach its arrival sources mid-run).
        self.workload: Optional[Workload] = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, op: "Operation", client_id: str = "client") -> None:
        """Submit one request now (spawns its process)."""
        self.env.process(self._request(op, client_id))

    def submit_and_wait(self, op: "Operation", client_id: str = "client"):
        """Submit one request; returns its process (an event to join).

        Used by closed-loop clients that block until their request
        reaches a terminal outcome.
        """
        return self.env.process(self._request(op, client_id))

    def run_workload(self, workload: Workload) -> None:
        """Start all of a workload's arrival processes."""
        self.workload = workload
        for generator in workload.processes(self):
            self.env.process(generator)

    def run_arrivals(
        self,
        arrivals: Iterable[Tuple[float, OperationFactory]],
        client_id: str = "client",
    ) -> int:
        """Preload a fully pre-generated arrival stream.

        ``arrivals`` is an ascending sequence of ``(absolute_time,
        operation_factory)`` pairs (see
        :func:`repro.workloads.spec.poisson_arrival_stream`).  Each
        arrival becomes one pre-triggered event whose callback submits
        the operation, loaded through ``Environment.schedule_batch`` in
        a single heapify -- no per-arrival source-process wakeup, no
        per-arrival heap sift.  Returns the number of arrivals loaded.

        Use this for open-loop streams whose rate does not change
        mid-run; live-rate sources (fault-driven bursts) need the
        per-arrival :class:`~repro.workloads.spec.OpenLoopSource` path.
        """
        env = self.env
        submit = self.submit

        def deliver(event: Event) -> None:
            submit(event._value(), client_id=client_id)

        def entries():
            for at, factory in arrivals:
                event = Event(env)
                event._value = factory
                event.callbacks.append(deliver)
                yield at, event

        return env.schedule_batch(entries())

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def _record(
        self,
        request_id: int,
        op: "Operation",
        client_id: str,
        arrival: float,
        status: RequestStatus,
        retries: int,
        req_aid: Optional[int] = None,
    ) -> None:
        record = RequestRecord(
            request_id=request_id,
            op_name=op.name,
            client_id=client_id,
            arrival_time=arrival,
            finish_time=self.env.now,
            status=status,
            retries=retries,
        )
        if req_aid is not None:
            self._tracer.async_end(
                self.env.now,
                "request",
                f"{op.name}#{request_id}",
                f"req:{op.name}",
                req_aid,
                status=status.value,
                retries=retries,
            )
        self.collector.record(record)
        self.controller.observe_completion(record)

    def _request(self, op: "Operation", client_id: str):
        env = self.env
        controller = self.controller
        request_id = self._req_seq
        self._req_seq = request_id + 1
        arrival = env.now
        self.collector.note_offered(op_name=op.name)
        self.inflight += 1
        retries = 0
        req_aid = None
        if self._hooked:
            req_aid = self._tracer.async_begin(
                arrival,
                "request",
                f"{op.name}#{request_id}",
                f"req:{op.name}",
                client=client_id,
            )
        try:
            while True:
                if not controller.admit(op.name, client_id):
                    self._record(
                        request_id, op, client_id, arrival,
                        RequestStatus.DROPPED, retries, req_aid,
                    )
                    return
                task = controller.create_cancel(
                    kind=op.kind,
                    client_id=client_id,
                    op_name=op.name,
                    cancellable=op.cancellable,
                )
                if retries > 0:
                    # Fairness (§4): a re-executed task is exempt from
                    # further cancellations.
                    task.mark_non_cancellable()
                try:
                    yield from self.app.execute(task, op)
                except DropRequest:
                    controller.free_cancel(task)
                    self._record(
                        request_id, op, client_id, arrival,
                        RequestStatus.DROPPED, retries, req_aid,
                    )
                    return
                except Interrupt as exc:
                    controller.free_cancel(task)
                    if isinstance(exc.cause, DropSignal):
                        # Victim drop (Protego-style): terminal, no retry.
                        self._record(
                            request_id, op, client_id, arrival,
                            RequestStatus.DROPPED, retries, req_aid,
                        )
                        return
                    if not isinstance(exc.cause, CancelSignal):
                        # Unknown interrupt cause: a bug in the model, not
                        # an overload-control action.  Escalate loudly
                        # (bare Interrupts are auto-defused by the kernel).
                        raise RuntimeError(
                            "request interrupted with unknown cause "
                            f"{exc.cause!r}"
                        ) from exc
                    retries += 1
                    decision = yield from controller.reexecution_gate(
                        task, arrival
                    )
                    if decision == "drop":
                        self._record(
                            request_id, op, client_id, arrival,
                            RequestStatus.CANCELLED, retries, req_aid,
                        )
                        return
                    continue  # re-execute
                else:
                    controller.free_cancel(task)
                    self._record(
                        request_id, op, client_id, arrival,
                        RequestStatus.COMPLETED, retries, req_aid,
                    )
                    return
        finally:
            self.inflight -= 1
