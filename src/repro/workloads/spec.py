"""Workload specifications: arrival processes and operation mixes.

A :class:`Workload` is a set of arrival sources: open-loop Poisson
streams of a weighted operation mix (the sysbench-style foreground load)
plus scheduled one-shot operations (the culprit triggers of each case,
e.g. "launch a backup query at t = 20 s").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..apps.base import Operation
    from ..sim.rng import Rng
    from .driver import Driver

#: Factory producing a fresh Operation per arrival (so per-request params
#: can be randomized without sharing state between requests).
OperationFactory = Callable[[], "Operation"]


def poisson_arrival_stream(
    rng: "Rng",
    rate: float,
    stop_time: float,
    factory: Optional[OperationFactory] = None,
    start_time: float = 0.0,
    mix: Optional[Sequence["MixEntry"]] = None,
) -> List[Tuple[float, OperationFactory]]:
    """Pre-generate a Poisson arrival stream for ``Driver.run_arrivals``.

    Returns ascending ``(absolute_time, operation_factory)`` pairs.
    Pass either a single ``factory`` or a weighted ``mix``.  With a
    ``mix``, the rng draws (one exponential then one weighted choice per
    arrival) interleave exactly like :class:`OpenLoopSource.process` at
    a fixed rate, so the materialized stream is *draw-identical* to what
    the generator source would submit.  Only for streams whose rate is
    fixed for the whole run -- live-rate behavior (burst faults) needs
    the generator source.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if (factory is None) == (mix is None):
        raise ValueError("pass exactly one of factory or mix")
    mean = 1.0 / rate
    exponential = rng.exponential
    choose = None
    if mix is not None:
        choose = rng.weighted_chooser(mix, [m.weight for m in mix])
    out: List[Tuple[float, OperationFactory]] = []
    append = out.append
    t = start_time
    while True:
        t += exponential(mean)
        if t >= stop_time:
            break
        append((t, factory if choose is None else choose().factory))
    return out


@dataclass
class MixEntry:
    """One operation class within an open-loop mix."""

    factory: OperationFactory
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass
class OpenLoopSource:
    """Poisson arrivals of a weighted operation mix.

    ``burst_factor`` is a live multiplier on :attr:`rate`, re-read at
    every arrival: :mod:`repro.faults` raises it during a ``burst``
    fault window and restores it afterwards, giving mid-run
    arrival-rate spikes without rebuilding the workload.
    """

    rate: float  # arrivals per second
    mix: List[MixEntry]
    client_id: str = "client"
    start_time: float = 0.0
    stop_time: Optional[float] = None
    rng_stream: str = "arrivals"
    #: Live arrival-rate multiplier (fault-injection hook).
    burst_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if not self.mix:
            raise ValueError("mix must not be empty")

    def process(self, driver: "Driver"):
        env = driver.env
        rng = driver.app.rng.fork(f"{self.rng_stream}:{self.client_id}")
        # Precompiled chooser: draw-for-draw identical to weighted_choice
        # (see Rng.weighted_chooser), so the sampled sequence is unchanged.
        choose = rng.weighted_chooser(
            self.mix, [m.weight for m in self.mix]
        )
        exponential = rng.exponential
        timeout = env.timeout
        submit = driver.submit
        client_id = self.client_id
        if self.start_time > 0:
            yield timeout(self.start_time)
        while self.stop_time is None or env.now < self.stop_time:
            # self.rate / self.burst_factor are re-read per arrival: both
            # are live fault-injection hooks.
            yield timeout(
                exponential(1.0 / (self.rate * self.burst_factor))
            )
            if self.stop_time is not None and env.now >= self.stop_time:
                break
            submit(choose().factory(), client_id=client_id)


@dataclass
class ScheduledOp:
    """A one-shot operation fired at a fixed time (culprit triggers)."""

    at: float
    factory: OperationFactory
    client_id: str = "trigger"

    def process(self, driver: "Driver"):
        yield driver.env.timeout(self.at)
        driver.submit(self.factory(), client_id=self.client_id)


@dataclass
class PeriodicOp:
    """An operation fired on a fixed period (background tasks, crons)."""

    period: float
    factory: OperationFactory
    client_id: str = "background"
    start_time: float = 0.0
    stop_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")

    def process(self, driver: "Driver"):
        env = driver.env
        if self.start_time > 0:
            yield env.timeout(self.start_time)
        while self.stop_time is None or env.now < self.stop_time:
            driver.submit(self.factory(), client_id=self.client_id)
            yield env.timeout(self.period)


@dataclass
class ClosedLoopSource:
    """A fixed population of clients in a request/think loop.

    Unlike the open-loop sources, a closed loop self-throttles under
    overload: a blocked client submits nothing until its previous request
    resolves -- the classic benchmark-client model (sysbench threads).
    """

    clients: int
    mix: List[MixEntry]
    think_time: float = 0.0
    client_prefix: str = "closed"
    start_time: float = 0.0
    stop_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.clients <= 0:
            raise ValueError("clients must be positive")
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")
        if not self.mix:
            raise ValueError("mix must not be empty")

    def process(self, driver: "Driver"):
        # Spawn one loop per client; this generator just sets them up.
        for i in range(self.clients):
            driver.env.process(self._client_loop(driver, i))
        return
        yield  # pragma: no cover - generator protocol

    def _client_loop(self, driver: "Driver", index: int):
        env = driver.env
        client_id = f"{self.client_prefix}-{index}"
        rng = driver.app.rng.fork(f"closed:{client_id}")
        choose = rng.weighted_chooser(
            self.mix, [m.weight for m in self.mix]
        )
        if self.start_time > 0:
            yield env.timeout(self.start_time)
        while self.stop_time is None or env.now < self.stop_time:
            entry = choose()
            done = driver.submit_and_wait(entry.factory(), client_id)
            yield done
            if self.think_time > 0:
                yield env.timeout(rng.exponential(self.think_time))


@dataclass
class Workload:
    """A full workload: any combination of sources."""

    sources: List[object] = field(default_factory=list)

    def add(self, source) -> "Workload":
        self.sources.append(source)
        return self

    def processes(self, driver: "Driver"):
        return [source.process(driver) for source in self.sources]
