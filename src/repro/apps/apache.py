"""Simulated Apache httpd application model.

Models case c9: the worker MPM has a fixed number of workers
(``MaxClients``); slow PHP scripts occupy workers for seconds while static
requests need milliseconds, so a handful of scripts exhausts the pool and
every request queues.

Apache's built-in cancellation cannot stop a PHP script mid-flight
(§5.2's "incomplete cancellation support"); the case builder marks
``php_script`` operations cancellable only when the thread-level
cancellation flag is enabled, mirroring the paper's opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.progress import GetNextProgress
from ..core.task import CancellableTask
from ..core.types import ResourceType
from ..sim.resources import ThreadPool
from .base import Application

if TYPE_CHECKING:  # pragma: no cover
    from ..core.controller import BaseController
    from ..sim.environment import Environment
    from ..sim.rng import Rng


@dataclass
class ApacheConfig:
    """Sizing and service-time parameters (simulated seconds)."""

    #: Worker MPM size (MaxClients).
    max_clients: int = 16
    #: Accept queue bound; beyond it connections are refused (503).
    accept_queue: Optional[int] = 512
    static_service: float = 0.003
    #: Default PHP script runtime.
    php_service: float = 3.0
    #: Checkpoint granularity inside a script.
    php_step: float = 0.05


class Apache(Application):
    """The simulated Apache httpd server."""

    name = "apache"

    def __init__(
        self,
        env: "Environment",
        controller: "BaseController",
        rng: "Rng",
        config: Optional[ApacheConfig] = None,
    ) -> None:
        super().__init__(env, controller, rng)
        self.config = config or ApacheConfig()
        cfg = self.config

        self.workers = ThreadPool(
            env,
            "apache.workers",
            workers=cfg.max_clients,
            queue_capacity=cfg.accept_queue,
        )
        self.r_workers = self.register_resource(
            "worker_pool", ResourceType.QUEUE
        )
        self.instrumentation_sites = 6

        self.register_handler("static", self.static)
        self.register_handler("php_script", self.php_script)

    def static(self, task: CancellableTask):
        """Static file request: brief worker occupancy."""
        slot = yield from self.acquire_slot(
            task, self.workers, self.r_workers, klass="static"
        )
        try:
            yield self.env.timeout(self.config.static_service)
            yield from self.checkpoint(task)
        finally:
            self.release_lock(task, slot, self.r_workers)

    def php_script(
        self, task: CancellableTask, duration: Optional[float] = None
    ):
        """Slow PHP request: occupies a worker for ``duration`` seconds.

        The script's writes go through Apache's write log; on cancellation
        the unflushed context is discarded, so thread-level cancellation
        stays consistent (§5.2).
        """
        cfg = self.config
        runtime = duration if duration is not None else cfg.php_service
        progress = GetNextProgress(total_rows=max(1.0, runtime * 100))
        task.progress_model = progress
        # Apache has no application-level initiator for a running script:
        # cancelling this task requires the opt-in thread-level flag
        # (pthread_cancel; §3.6 / §5.2).
        task.metadata["requires_thread_cancel"] = True
        slot = yield from self.acquire_slot(
            task, self.workers, self.r_workers, klass="php"
        )
        try:
            elapsed = 0.0
            while elapsed < runtime:
                step = min(cfg.php_step, runtime - elapsed)
                yield self.env.timeout(step)
                elapsed += step
                progress.advance(step * 100)
                yield from self.checkpoint(task)
        finally:
            self.release_lock(task, slot, self.r_workers)
