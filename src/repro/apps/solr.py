"""Simulated Apache Solr application model.

Models the application resources behind cases c14-c15:

* **index lock** (LOCK, c14): a complex boolean query with thousands of
  clauses holds the searcher's index lock long, delaying other queries.
* **searcher queue** (QUEUE, c15): nested range queries occupy the search
  executor's threads for seconds, starving routine queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.progress import GetNextProgress
from ..core.task import CancellableTask
from ..core.types import ResourceType
from ..sim.resources import SyncLock, ThreadPool
from .base import Application

if TYPE_CHECKING:  # pragma: no cover
    from ..core.controller import BaseController
    from ..sim.environment import Environment
    from ..sim.rng import Rng


@dataclass
class SolrConfig:
    """Sizing and service-time parameters (simulated seconds)."""

    #: Search executor threads.
    searcher_threads: int = 12
    query_service: float = 0.005
    #: Brief shared index-lock hold for a routine query.
    index_read_service: float = 0.001
    #: Default runtime of a complex boolean query (holds the index lock).
    boolean_query_service: float = 4.0
    #: Default runtime of a nested range query (holds a searcher thread).
    range_query_service: float = 3.0
    step: float = 0.05


class Solr(Application):
    """The simulated Solr node."""

    name = "solr"

    def __init__(
        self,
        env: "Environment",
        controller: "BaseController",
        rng: "Rng",
        config: Optional[SolrConfig] = None,
    ) -> None:
        super().__init__(env, controller, rng)
        self.config = config or SolrConfig()
        cfg = self.config

        self.searchers = ThreadPool(
            env, "solr.searchers", workers=cfg.searcher_threads
        )
        self.index_lock = SyncLock(env, "solr.index_lock")

        self.r_queue = self.register_resource(
            "searcher_queue", ResourceType.QUEUE
        )
        self.r_index_lock = self.register_resource(
            "index_lock", ResourceType.LOCK
        )
        self.instrumentation_sites = 10

        self.register_handler("query", self.query)
        self.register_handler("boolean_query", self.boolean_query)
        self.register_handler("range_query", self.range_query)

    def query(self, task: CancellableTask):
        """Routine query: searcher thread + brief shared index access."""
        cfg = self.config
        slot = yield from self.acquire_slot(
            task, self.searchers, self.r_queue, klass="light"
        )
        try:
            grant = yield from self.acquire_lock(
                task, self.index_lock, self.r_index_lock, exclusive=False
            )
            try:
                yield self.env.timeout(cfg.index_read_service)
            finally:
                self.release_lock(task, grant, self.r_index_lock)
            yield self.env.timeout(cfg.query_service)
            yield from self.checkpoint(task)
        finally:
            self.release_lock(task, slot, self.r_queue)

    def boolean_query(
        self, task: CancellableTask, duration: Optional[float] = None
    ):
        """Complex boolean query: long exclusive index-lock hold (c14)."""
        cfg = self.config
        runtime = (
            duration if duration is not None else cfg.boolean_query_service
        )
        progress = GetNextProgress(total_rows=max(1.0, runtime * 100))
        task.progress_model = progress
        slot = yield from self.acquire_slot(
            task, self.searchers, self.r_queue, klass="heavy"
        )
        try:
            grant = yield from self.acquire_lock(
                task, self.index_lock, self.r_index_lock, exclusive=True
            )
            try:
                elapsed = 0.0
                while elapsed < runtime:
                    step = min(cfg.step, runtime - elapsed)
                    yield self.env.timeout(step)
                    elapsed += step
                    progress.advance(step * 100)
                    yield from self.checkpoint(task)
            finally:
                self.release_lock(task, grant, self.r_index_lock)
        finally:
            self.release_lock(task, slot, self.r_queue)

    def range_query(
        self, task: CancellableTask, duration: Optional[float] = None
    ):
        """Nested range query: long searcher-thread occupancy (c15)."""
        cfg = self.config
        runtime = duration if duration is not None else cfg.range_query_service
        progress = GetNextProgress(total_rows=max(1.0, runtime * 100))
        task.progress_model = progress
        slot = yield from self.acquire_slot(
            task, self.searchers, self.r_queue, klass="heavy"
        )
        try:
            elapsed = 0.0
            while elapsed < runtime:
                step = min(cfg.step, runtime - elapsed)
                yield self.env.timeout(step)
                elapsed += step
                progress.advance(step * 100)
                yield from self.checkpoint(task)
        finally:
            self.release_lock(task, slot, self.r_queue)
