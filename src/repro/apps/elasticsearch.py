"""Simulated Elasticsearch application model.

Models the application resources behind cases c10-c13:

* **query cache** (MEMORY, c10): filter results are cached; a large
  search floods the cache, evicting the hot entries every other search
  relies on.
* **heap** (MEMORY, c11): a nested aggregation allocates a huge fraction
  of the JVM heap; high occupancy triggers stop-the-world GC pauses that
  stall every in-flight request.
* **CPU** (CPU, c12): long-running analytical queries monopolize cores,
  queueing short searches behind their slices.
* **document lock** (LOCK, c13): a large update-by-query holds a shard's
  document lock, blocking reads and writes to the shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.progress import GetNextProgress
from ..core.task import CancellableTask
from ..core.types import ResourceType
from ..sim.resources import CPU, MemoryPool, SyncLock
from .base import Application

if TYPE_CHECKING:  # pragma: no cover
    from ..core.controller import BaseController
    from ..sim.environment import Environment
    from ..sim.rng import Rng

#: Cache owner token for the hot filter entries of routine searches.
HOT_CACHE = "hot-filters"


@dataclass
class ElasticsearchConfig:
    """Sizing and service-time parameters (simulated seconds)."""

    cores: int = 8
    cpu_slice: float = 0.002
    #: CPU seconds for a routine search.
    search_cpu: float = 0.004
    #: Extra latency when the query cache misses.
    cache_miss_penalty: float = 0.012
    #: Query cache size in entries.
    query_cache_entries: int = 1024
    #: Entries the routine searches need resident for ~100% hits.
    hot_cache_entries: int = 900
    #: Entries a routine search touches.
    entries_per_search: int = 2

    #: Heap size in "blocks".
    heap_blocks: int = 2048
    #: Steady-state heap occupancy of routine traffic.
    baseline_heap_blocks: int = 600
    #: Heap occupancy fraction that triggers GC.
    gc_threshold: float = 0.85
    #: GC pause per occupied heap block, seconds.
    gc_pause_per_block: float = 0.0004
    #: GC check period, seconds.
    gc_period: float = 0.2

    #: Duration granularity for long-running queries.
    long_query_step: float = 0.05


class Elasticsearch(Application):
    """The simulated Elasticsearch node."""

    name = "elasticsearch"

    def __init__(
        self,
        env: "Environment",
        controller: "BaseController",
        rng: "Rng",
        config: Optional[ElasticsearchConfig] = None,
    ) -> None:
        super().__init__(env, controller, rng)
        self.config = config or ElasticsearchConfig()
        cfg = self.config

        self.cpu = CPU(env, "es.cpu", cores=cfg.cores, slice_time=cfg.cpu_slice)
        self.query_cache = MemoryPool(
            env,
            "es.query_cache",
            capacity_pages=cfg.query_cache_entries,
            eviction="proportional",
        )
        self.heap = MemoryPool(
            env,
            "es.heap",
            capacity_pages=cfg.heap_blocks,
            eviction="lru",
        )
        self.doc_lock = SyncLock(env, "es.doc_lock")

        self.r_query_cache = self.register_resource(
            "query_cache", ResourceType.MEMORY
        )
        self.r_heap = self.register_resource("heap", ResourceType.MEMORY)
        self.r_cpu = self.register_resource("cpu", ResourceType.CPU)
        self.r_doc_lock = self.register_resource(
            "document_lock", ResourceType.LOCK
        )
        self.instrumentation_sites = 16

        # Warm state: hot filters cached, baseline heap allocated.
        self.query_cache.acquire(HOT_CACHE, cfg.hot_cache_entries)
        self.heap.acquire("baseline", cfg.baseline_heap_blocks)

        #: Set while a stop-the-world GC pause is in progress.
        self._gc_until = 0.0
        self.gc_pauses = 0
        env.process(self._gc_loop())

        self.register_handler("search", self.search)
        self.register_handler("large_search", self.large_search)
        self.register_handler("nested_aggregation", self.nested_aggregation)
        self.register_handler("long_query", self.long_query)
        self.register_handler("update_by_query", self.update_by_query)
        self.register_handler("indexing", self.indexing)

    # ------------------------------------------------------------------
    # GC model (case c11)
    # ------------------------------------------------------------------
    def _gc_loop(self):
        cfg = self.config
        while True:
            yield self.env.timeout(cfg.gc_period)
            if self.heap.occupancy() < cfg.gc_threshold:
                continue
            self.gc_pauses += 1
            # The pause is proportional to the heap in use, but proceeds
            # in slices: if the live set shrinks mid-collection (e.g. the
            # culprit aggregation was cancelled and freed its blocks), the
            # collection completes early.
            remaining = self.heap.used_pages * cfg.gc_pause_per_block
            while remaining > 1e-9:
                gc_slice = min(0.025, remaining)
                self._gc_until = self.env.now + gc_slice
                yield self.env.timeout(gc_slice)
                remaining -= gc_slice
                if self.heap.occupancy() < cfg.gc_threshold:
                    break
            self._gc_until = self.env.now

    def _gc_stall(self, task: CancellableTask):
        """Stop-the-world: requests stall until the current pause ends."""
        while self.env.now < self._gc_until:
            wait = self._gc_until - self.env.now
            # Trace before sleeping: the estimator must see the stall
            # while the pause is in progress, not after it resolves.
            self.trace_slow_by(task, self.r_heap, wait)
            yield self.env.timeout(wait)

    # ------------------------------------------------------------------
    # CPU helper (case c12)
    # ------------------------------------------------------------------
    def _burn_cpu(self, task: CancellableTask, cpu_time: float):
        """Execute on the shared CPU; trace usage and run-queue delay."""
        start = self.env.now
        yield from self.cpu.execute(task, cpu_time)
        elapsed = self.env.now - start
        self.trace_get(task, self.r_cpu, cpu_time)
        queue_wait = max(0.0, elapsed - cpu_time)
        if queue_wait > 1e-9:
            self.trace_slow_by(task, self.r_cpu, queue_wait)

    # ------------------------------------------------------------------
    # Query cache helper (case c10)
    # ------------------------------------------------------------------
    def _cache_access(self, task: CancellableTask) -> float:
        cfg = self.config
        resident = self.query_cache.resident_pages(HOT_CACHE)
        p_hit = min(1.0, resident / cfg.hot_cache_entries)
        misses = sum(
            1
            for _ in range(cfg.entries_per_search)
            if not self.rng.chance(p_hit)
        )
        self.query_cache.touch(HOT_CACHE)
        if misses == 0:
            return 0.0
        outcome = self.query_cache.acquire(HOT_CACHE, misses)
        self.trace_get(task, self.r_query_cache, misses)
        self.trace_free(task, self.r_query_cache, misses)
        delay = misses * cfg.cache_miss_penalty
        if outcome.evicted:
            self.trace_slow_by(task, self.r_query_cache, delay, outcome.evicted)
        return delay

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def search(self, task: CancellableTask):
        """Routine search: cache lookup + a little CPU."""
        yield from self._gc_stall(task)
        delay = self._cache_access(task)
        if delay > 0:
            yield self.env.timeout(delay)
        yield from self._burn_cpu(task, self.config.search_cpu)
        yield from self.checkpoint(task)

    def indexing(self, task: CancellableTask):
        """Document indexing: brief shared doc lock + CPU."""
        yield from self._gc_stall(task)
        grant = yield from self.acquire_lock(
            task, self.doc_lock, self.r_doc_lock, exclusive=False
        )
        try:
            yield from self._burn_cpu(task, self.config.search_cpu)
            yield from self.checkpoint(task)
        finally:
            self.release_lock(task, grant, self.r_doc_lock)

    def large_search(
        self,
        task: CancellableTask,
        entries: Optional[int] = None,
        chunk_service: float = 0.045,
    ):
        """Huge filter query flooding the query cache (case c10).

        Streams ~3x the cache capacity through it while scanning segments
        (``chunk_service`` seconds per chunk), keeping its entries pinned
        until the search completes -- the long-lived pollution behind the
        real incident.
        """
        cfg = self.config
        total = entries if entries is not None else cfg.query_cache_entries * 3
        progress = GetNextProgress(total_rows=total)
        task.progress_model = progress
        chunk = max(32, total // 100)
        filled = 0
        try:
            while filled < total:
                step = min(chunk, total - filled)
                outcome = self.query_cache.acquire(task, step)
                self.trace_get(task, self.r_query_cache, step)
                stall = 0.0
                if outcome.evicted:
                    stall = outcome.evicted * 0.0001
                    self.trace_slow_by(
                        task, self.r_query_cache, stall, outcome.evicted
                    )
                yield from self._burn_cpu(task, step * 0.0001)
                yield self.env.timeout(chunk_service + stall)
                filled += step
                progress.advance(step)
                yield from self.checkpoint(task)
        finally:
            released = self.query_cache.release(task)
            if released:
                self.trace_free(task, self.r_query_cache, released)

    def nested_aggregation(
        self,
        task: CancellableTask,
        blocks: Optional[int] = None,
        aggregate_time: float = 8.0,
    ):
        """Nested aggregation exhausting the heap (case c11).

        Two phases: allocate ``blocks`` heap blocks (driving occupancy over
        the GC threshold), then hold them for ``aggregate_time`` seconds of
        bucket merging.  Progress spans both phases so the future-gain
        estimate stays meaningful while the heap is held.
        """
        cfg = self.config
        total = blocks if blocks is not None else int(cfg.heap_blocks * 0.5)
        # Progress units: one per block plus one per merge step.
        merge_step = 0.05
        merge_steps = max(1, int(aggregate_time / merge_step))
        progress = GetNextProgress(total_rows=total + merge_steps)
        task.progress_model = progress
        chunk = max(16, total // 80)
        held = 0
        try:
            while held < total:
                yield from self._gc_stall(task)
                step = min(chunk, total - held)
                outcome = self.heap.acquire(
                    task, step, protected=("baseline",)
                )
                self.trace_get(task, self.r_heap, outcome.acquired)
                held += outcome.acquired
                if outcome.acquired < step:
                    # Allocation pressure: wait for GC to reclaim space.
                    yield self.env.timeout(cfg.gc_period)
                yield from self._burn_cpu(task, 0.002)
                progress.advance(step)
                yield from self.checkpoint(task)
            # Hold the allocation while merging buckets.
            for _ in range(merge_steps):
                yield self.env.timeout(merge_step)
                progress.advance(1)
                yield from self.checkpoint(task)
        finally:
            released = self.heap.release(task)
            if released:
                self.trace_free(task, self.r_heap, released)

    def long_query(self, task: CancellableTask, cpu_seconds: float = 3.0):
        """CPU-bound analytical query (case c12)."""
        cfg = self.config
        progress = GetNextProgress(total_rows=max(1.0, cpu_seconds * 100))
        task.progress_model = progress
        burned = 0.0
        while burned < cpu_seconds:
            step = min(cfg.long_query_step, cpu_seconds - burned)
            yield from self._burn_cpu(task, step)
            burned += step
            progress.advance(step * 100)
            yield from self.checkpoint(task)

    def update_by_query(
        self, task: CancellableTask, duration: float = 4.0
    ):
        """Large update holding the shard's document lock (case c13)."""
        progress = GetNextProgress(total_rows=max(1.0, duration * 100))
        task.progress_model = progress
        grant = yield from self.acquire_lock(
            task, self.doc_lock, self.r_doc_lock, exclusive=True
        )
        try:
            elapsed = 0.0
            step = 0.05
            while elapsed < duration:
                chunk = min(step, duration - elapsed)
                yield self.env.timeout(chunk)
                elapsed += chunk
                progress.advance(chunk * 100)
                yield from self.checkpoint(task)
        finally:
            self.release_lock(task, grant, self.r_doc_lock)
