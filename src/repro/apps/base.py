"""Application model framework.

Each simulated application (MySQL, PostgreSQL, Apache, Elasticsearch,
Solr, etcd) subclasses :class:`Application`: it builds its internal
resources from the sim primitives, registers the corresponding
*application resources* with the overload controller (the paper's
integration step), and implements one generator handler per operation.

Handlers follow the safe-cancellation discipline: resource-holding
regions are wrapped in context managers / try-finally so an interrupt at
any checkpoint unwinds cleanly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, Optional

from ..core.controller import BaseController
from ..core.task import CancellableTask
from ..core.types import DropRequest, ResourceHandle, ResourceType, TaskKind
from ..obs.tracer import owner_label
from ..sim.resources import QueueFull

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.rng import Rng


class Operation:
    """One request to execute against an application."""

    def __init__(
        self,
        name: str,
        params: Optional[Dict[str, Any]] = None,
        kind: TaskKind = TaskKind.REQUEST,
        cancellable: bool = True,
    ) -> None:
        self.name = name
        self.params = params or {}
        self.kind = kind
        self.cancellable = cancellable

    def __repr__(self) -> str:
        return f"<Operation {self.name} {self.params}>"


#: Handler signature: generator executing the operation for a task.
Handler = Callable[..., Generator]


class Application:
    """Base class for simulated applications."""

    name = "app"

    def __init__(
        self, env: "Environment", controller: BaseController, rng: "Rng"
    ) -> None:
        self.env = env
        self.controller = controller
        self.rng = rng
        self._tracer = env.tracer
        #: Consolidated hook switch, mirrored from Environment (one bool
        #: per instant-emission site instead of a tracer lookup chain).
        self._hooked = env.hooks_enabled
        self._handlers: Dict[str, Handler] = {}
        #: Count of instrumentation sites (tracing calls wired into this
        #: app); reported in the Table 3 integration-effort experiment.
        self.instrumentation_sites = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_handler(self, op_name: str, handler: Handler) -> None:
        self._handlers[op_name] = handler

    def register_resource(
        self, name: str, rtype: ResourceType
    ) -> ResourceHandle:
        return self.controller.register_resource(f"{self.name}.{name}", rtype)

    def operations(self) -> list:
        return sorted(self._handlers.keys())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, task: CancellableTask, op: Operation) -> Generator:
        """Run ``op`` on behalf of ``task`` (process generator)."""
        handler = self._handlers.get(op.name)
        if handler is None:
            raise KeyError(f"{self.name} has no operation {op.name!r}")
        yield from handler(task, **op.params)

    # ------------------------------------------------------------------
    # Instrumentation helpers (the ATROPOS tracing call sites)
    # ------------------------------------------------------------------
    def trace_get(
        self, task: CancellableTask, resource: ResourceHandle, amount: float = 1.0
    ) -> None:
        self.controller.get_resource(task, resource, amount)
        self._charge_tracing(task)

    def trace_free(
        self, task: CancellableTask, resource: ResourceHandle, amount: float = 1.0
    ) -> None:
        self.controller.free_resource(task, resource, amount)
        self._charge_tracing(task)

    def trace_slow_by(
        self,
        task: CancellableTask,
        resource: ResourceHandle,
        delay: float,
        events: float = 1.0,
    ) -> None:
        self.controller.slow_by_resource(task, resource, delay, events)
        self._charge_tracing(task)

    def _charge_tracing(self, task: CancellableTask) -> None:
        """Accumulate tracing overhead as a latency debt on the task.

        The debt is paid (as simulated delay) at the next checkpoint --
        modelling the amortized rdtsc/sampled-timestamp cost of §3.2
        without a yield per traced event.
        """
        cost = self.controller.tracing_cost(1)
        if cost > 0.0:
            task.metadata["trace_debt"] = (
                task.metadata.get("trace_debt", 0.0) + cost
            )

    # ------------------------------------------------------------------
    # Traced resource acquisition helpers
    # ------------------------------------------------------------------
    def acquire_lock(
        self,
        task: CancellableTask,
        lock,
        handle: ResourceHandle,
        exclusive: bool = True,
    ) -> Generator:
        """Acquire a :class:`SyncLock` with ATROPOS tracing.

        Usage (the grant must be released via :meth:`release_lock` in a
        ``finally`` block)::

            grant = yield from self.acquire_lock(task, lock, handle)
            try:
                ...
            finally:
                self.release_lock(task, grant, handle)

        An interrupt while queued removes the request from the lock queue
        before re-raising (safe cancellation at the wait checkpoint).
        """
        self.controller.begin_wait(task, handle)
        grant = lock.acquire(owner=task, exclusive=exclusive)
        try:
            yield grant
        except BaseException:
            grant.close()
            self.controller.end_wait(task, handle)
            raise
        self.controller.end_wait(task, handle)
        self.trace_get(task, handle)
        return grant

    def release_lock(
        self, task: CancellableTask, grant, handle: ResourceHandle
    ) -> None:
        """Release a grant obtained via :meth:`acquire_lock` (idempotent)."""
        if grant.closed:
            return
        if grant.granted:
            self.trace_free(task, handle)
        grant.close()

    def acquire_slot(
        self,
        task: CancellableTask,
        pool,
        handle: ResourceHandle,
        klass: str = "default",
    ) -> Generator:
        """Acquire a :class:`ThreadPool` slot with ATROPOS tracing.

        Same protocol as :meth:`acquire_lock`; release with
        :meth:`release_lock`.
        """
        self.controller.begin_wait(task, handle)
        try:
            grant = pool.submit(owner=task, klass=klass)
        except QueueFull as exc:
            # Admission queue overflow is an application-level rejection
            # (HTTP 503 / too-many-connections), not a simulation error.
            self.controller.end_wait(task, handle)
            if self._hooked:
                self._tracer.instant(
                    self.env.now,
                    "app",
                    f"queue-full {handle.name}",
                    f"app:{self.name}",
                    task=owner_label(task),
                )
            raise DropRequest(f"queue-full:{handle.name}") from exc
        except BaseException:
            self.controller.end_wait(task, handle)
            raise
        try:
            yield grant
        except BaseException:
            grant.close()
            self.controller.end_wait(task, handle)
            raise
        self.controller.end_wait(task, handle)
        self.trace_get(task, handle)
        return grant

    def checkpoint(self, task: CancellableTask) -> Generator:
        """Cancellation / control checkpoint inside a handler.

        Applies, in order: the controller's victim-drop decision
        (Protego), any penalty-throttle delay (pBox), and the accumulated
        tracing-overhead debt.  Handlers call this at natural safe points.
        """
        if self.controller.should_drop(task):
            if self._hooked:
                self._tracer.instant(
                    self.env.now,
                    "app",
                    "controller-drop",
                    f"app:{self.name}",
                    task=owner_label(task),
                )
            raise DropRequest("controller-drop")
        delay = self.controller.throttle_delay(task)
        debt = task.metadata.pop("trace_debt", 0.0)
        total = delay + debt
        if total > 0.0:
            if self._hooked:
                self._tracer.instant(
                    self.env.now,
                    "app",
                    "checkpoint-delay",
                    f"app:{self.name}",
                    task=owner_label(task),
                    throttle=round(delay, 9),
                    trace_debt=round(debt, 9),
                )
            yield self.env.timeout(total)
