"""Simulated MySQL/InnoDB application model.

Models the application resources behind the paper's MySQL cases:

* **buffer pool** (MEMORY, case c5 / Fig 2): a paged LRU cache shared by a
  hot working set and streaming scans/dumps; thrashing appears as eviction
  churn and hit-ratio collapse for lightweight queries.
* **table locks** (LOCK, cases c1/c4 / Fig 3): FIFO reader-writer locks;
  a backup query acquires write locks on *all* tables and then waits for
  in-flight scans to drain while holding them -- the "waiting for table
  flush" convoy of case c1.
* **undo log** (LOCK, case c3): a latch with shared appends; a queued
  exclusive purge behind a long transaction convoys all writers.
* **InnoDB admission queue** (QUEUE, case c2): the
  ``innodb_thread_concurrency`` limit; slow queries monopolize slots.

Handlers are instrumented with the ATROPOS tracing APIs exactly where the
paper instruments MySQL (Figure 8): page acquisition, eviction stalls,
and releases for the pool; grant/wait/release for locks and queue slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..core.progress import GetNextProgress
from ..core.task import CancellableTask
from ..core.types import ResourceType, TaskKind
from ..sim.resources import MemoryPool, SyncLock, ThreadPool
from .base import Application, Operation

if TYPE_CHECKING:  # pragma: no cover
    from ..core.controller import BaseController
    from ..sim.environment import Environment
    from ..sim.rng import Rng

#: Pool owner token for the shared hot working set of lightweight queries.
HOT_SET = "hot-set"


@dataclass
class MySQLConfig:
    """Sizing and service-time parameters (simulated seconds)."""

    tables: int = 5
    #: Buffer pool capacity in pages ("512 MB" scaled down for simulation).
    buffer_pool_pages: int = 2048
    #: Total data size in pages ("2 GB": 4x the pool).
    data_pages: int = 8192
    #: Pages the lightweight working set needs resident for ~100% hits.
    hot_set_pages: int = 1800
    #: InnoDB concurrency limit (innodb_thread_concurrency).
    innodb_concurrency: int = 8
    #: Admission queue bound; None = unbounded.
    innodb_queue_capacity: Optional[int] = None

    point_select_service: float = 0.004
    row_update_service: float = 0.005
    #: Hot pages touched by one lightweight query.
    pages_per_light_op: int = 3
    #: Extra delay per buffer-pool miss (disk read), seconds.
    miss_penalty: float = 0.006
    #: Start with the hot working set resident (a warmed server).
    prewarm_hot_set: bool = True
    #: Delay per page evicted during an acquisition.
    evict_page_cost: float = 0.0002

    #: Rows a scan/dump processes per second.
    scan_rate_rows: float = 200_000.0
    #: Rows per scan chunk (one checkpoint per chunk).
    scan_chunk_rows: float = 20_000.0
    #: Rows per data page (maps rows scanned to pages acquired).
    rows_per_page: float = 120.0

    #: Undo-log latch hold per write, seconds.
    undo_append_service: float = 0.0002
    #: Purge latch hold, seconds.
    purge_service: float = 0.02

    #: Backup metadata work after locks are acquired, seconds.
    backup_metadata_service: float = 0.05


class MySQL(Application):
    """The simulated MySQL server."""

    name = "mysql"

    def __init__(
        self,
        env: "Environment",
        controller: "BaseController",
        rng: "Rng",
        config: Optional[MySQLConfig] = None,
    ) -> None:
        super().__init__(env, controller, rng)
        self.config = config or MySQLConfig()
        cfg = self.config

        # --- internal resources (sim primitives) ---
        self.buffer_pool = MemoryPool(
            env,
            "mysql.buffer_pool",
            capacity_pages=cfg.buffer_pool_pages,
            evict_page_cost=cfg.evict_page_cost,
            eviction="proportional",
        )
        self.table_locks: List[SyncLock] = [
            SyncLock(env, f"mysql.table_lock.{i}") for i in range(cfg.tables)
        ]
        self.undo_latch = SyncLock(env, "mysql.undo_latch")
        self.innodb_queue = ThreadPool(
            env,
            "mysql.innodb_queue",
            workers=cfg.innodb_concurrency,
            queue_capacity=cfg.innodb_queue_capacity,
        )

        # --- application resources registered with the controller ---
        self.r_buffer_pool = self.register_resource(
            "buffer_pool", ResourceType.MEMORY
        )
        self.r_table_lock = self.register_resource(
            "table_lock", ResourceType.LOCK
        )
        self.r_undo_log = self.register_resource("undo_log", ResourceType.LOCK)
        self.r_innodb_queue = self.register_resource(
            "innodb_queue", ResourceType.QUEUE
        )
        self.instrumentation_sites = 20  # Table 3: ~20 resources/sites

        #: Scan/dump processes currently in flight; the backup handler
        #: waits for these to drain while holding all table locks (c1).
        #: Insertion-ordered dict, not a set: events hash by identity, so
        #: set iteration order (the order backup waits on scans) would
        #: vary across interpreter processes and break run determinism.
        self._running_scans: Dict = {}

        if cfg.prewarm_hot_set:
            self.buffer_pool.acquire(HOT_SET, cfg.hot_set_pages)

        # --- handler registration ---
        self.register_handler("point_select", self.point_select)
        self.register_handler("row_update", self.row_update)
        self.register_handler("insert", self.insert)
        self.register_handler("scan", self.scan)
        self.register_handler("dump", self.dump)
        self.register_handler("backup", self.backup)
        self.register_handler("select_for_update", self.select_for_update)
        self.register_handler("long_transaction", self.long_transaction)
        self.register_handler("purge", self.purge)
        self.register_handler("slow_query", self.slow_query)
        self.register_handler("report_query", self.report_query)

    # ------------------------------------------------------------------
    # Buffer pool access for lightweight queries
    # ------------------------------------------------------------------
    def _hit_probability(self) -> float:
        resident = self.buffer_pool.resident_pages(HOT_SET)
        return min(1.0, resident / self.config.hot_set_pages)

    def _light_buffer_access(self, task: CancellableTask) -> float:
        """Touch hot pages; returns the extra delay from misses/evictions.

        Misses re-fault pages into the shared hot set (possibly evicting a
        scan's pages); each miss pays the disk penalty.  Mirrors the
        instrumentation of Figure 8: get on acquisition, slow-by on the
        eviction path.
        """
        cfg = self.config
        p_hit = self._hit_probability()
        misses = sum(
            1
            for _ in range(cfg.pages_per_light_op)
            if not self.rng.chance(p_hit)
        )
        self.buffer_pool.touch(HOT_SET)
        if misses == 0:
            return 0.0
        outcome = self.buffer_pool.acquire(HOT_SET, misses)
        self.trace_get(task, self.r_buffer_pool, misses)
        # The hot set is communal: the query does not keep pages, so the
        # attribution nets out immediately.
        self.trace_free(task, self.r_buffer_pool, misses)
        evict_delay = outcome.evicted * cfg.evict_page_cost
        delay = misses * cfg.miss_penalty + evict_delay
        # The whole refault delay (disk reads + eviction) is contention-
        # induced: with a warm pool, misses only happen because something
        # evicted the hot set.  This is the slow-by path of Figure 8.
        # Only refaults that themselves had to evict count as eviction
        # events (a miss served from the free list is not contention).
        if outcome.evicted:
            self.trace_slow_by(task, self.r_buffer_pool, delay, outcome.evicted)
        return delay

    # ------------------------------------------------------------------
    # Lightweight operations
    # ------------------------------------------------------------------
    def point_select(self, task: CancellableTask, table: int = 0):
        """Point SELECT: queue slot + hot-page reads."""
        slot = yield from self.acquire_slot(
            task, self.innodb_queue, self.r_innodb_queue, klass="light"
        )
        try:
            delay = self._light_buffer_access(task)
            yield self.env.timeout(self.config.point_select_service + delay)
            yield from self.checkpoint(task)
        finally:
            self.release_lock(task, slot, self.r_innodb_queue)

    def row_update(self, task: CancellableTask, table: int = 0):
        """Row UPDATE: queue slot + shared table lock + undo append."""
        slot = yield from self.acquire_slot(
            task, self.innodb_queue, self.r_innodb_queue, klass="light"
        )
        try:
            lock = self.table_locks[table % self.config.tables]
            grant = yield from self.acquire_lock(
                task, lock, self.r_table_lock, exclusive=False
            )
            try:
                delay = self._light_buffer_access(task)
                yield from self._undo_append(task)
                yield self.env.timeout(self.config.row_update_service + delay)
                yield from self.checkpoint(task)
            finally:
                self.release_lock(task, grant, self.r_table_lock)
        finally:
            self.release_lock(task, slot, self.r_innodb_queue)

    def insert(self, task: CancellableTask, table: int = 0):
        """INSERT: same resource footprint as a row update."""
        yield from self.row_update(task, table=table)

    def _undo_append(self, task: CancellableTask):
        """Append to the undo log (shared latch, brief hold)."""
        grant = yield from self.acquire_lock(
            task, self.undo_latch, self.r_undo_log, exclusive=False
        )
        try:
            yield self.env.timeout(self.config.undo_append_service)
        finally:
            self.release_lock(task, grant, self.r_undo_log)

    # ------------------------------------------------------------------
    # Heavyweight operations (the culprits)
    # ------------------------------------------------------------------
    def _stream_pages(
        self,
        task: CancellableTask,
        rows: float,
        progress: GetNextProgress,
        hold_pages: bool = True,
    ):
        """Stream ``rows`` rows through the buffer pool in chunks.

        Acquires the pages backing each chunk under the task's own owner
        key (so cancelling the task frees them), pays eviction stalls,
        and advances the GetNext progress counter.
        """
        cfg = self.config
        remaining = rows
        while remaining > 0:
            chunk_rows = min(cfg.scan_chunk_rows, remaining)
            chunk_pages = max(1, int(chunk_rows / cfg.rows_per_page))
            outcome = self.buffer_pool.acquire(task, chunk_pages)
            self.trace_get(task, self.r_buffer_pool, chunk_pages)
            stall = 0.0
            if outcome.evicted:
                stall = outcome.evicted * cfg.evict_page_cost
                self.trace_slow_by(
                    task, self.r_buffer_pool, stall, outcome.evicted
                )
            yield self.env.timeout(chunk_rows / cfg.scan_rate_rows + stall)
            progress.advance(chunk_rows)
            remaining -= chunk_rows
            if not hold_pages:
                released = self.buffer_pool.release(task)
                if released:
                    self.trace_free(task, self.r_buffer_pool, released)
            yield from self.checkpoint(task)

    def _release_streamed_pages(self, task: CancellableTask) -> None:
        released = self.buffer_pool.release(task)
        if released:
            self.trace_free(task, self.r_buffer_pool, released)

    def scan(self, task: CancellableTask, table: int = 0, rows: float = 1e6):
        """Long table scan: heavy buffer streaming.

        Scans take no table lock (InnoDB reads are MVCC), but they hold the
        server's "old query" barrier: a concurrent FLUSH/backup must wait
        for them to drain (see :meth:`backup`).
        """
        progress = GetNextProgress(total_rows=rows)
        task.progress_model = progress
        done = self.env.event()
        self._running_scans[done] = None
        try:
            slot = yield from self.acquire_slot(
                task, self.innodb_queue, self.r_innodb_queue, klass="heavy"
            )
            try:
                yield from self._stream_pages(task, rows, progress)
            finally:
                self._release_streamed_pages(task)
                self.release_lock(task, slot, self.r_innodb_queue)
        finally:
            self._running_scans.pop(done, None)
            if not done.triggered:
                done.succeed()

    def dump(self, task: CancellableTask, rows: Optional[float] = None):
        """mysqldump-style query reading the entire dataset (case c5)."""
        cfg = self.config
        total_rows = rows if rows is not None else cfg.data_pages * cfg.rows_per_page
        progress = GetNextProgress(total_rows=total_rows)
        task.progress_model = progress
        slot = yield from self.acquire_slot(
            task, self.innodb_queue, self.r_innodb_queue, klass="heavy"
        )
        try:
            yield from self._stream_pages(task, total_rows, progress)
        finally:
            self._release_streamed_pages(task)
            self.release_lock(task, slot, self.r_innodb_queue)

    def backup(self, task: CancellableTask):
        """Backup query (case c1): write-lock all tables, wait for scans.

        The subtle interaction: FLUSH TABLES WITH READ LOCK acquires write
        locks table by table, then must wait for in-flight long scans to
        finish before the metadata snapshot -- holding every lock the whole
        time, which blocks all subsequent writers.
        """
        grants = []
        try:
            for lock in self.table_locks:
                grant = yield from self.acquire_lock(
                    task, lock, self.r_table_lock, exclusive=True
                )
                grants.append(grant)
            # Wait for running scans to drain while holding all locks.
            while self._running_scans:
                pending = next(iter(self._running_scans))
                yield pending
                yield from self.checkpoint(task)
            yield self.env.timeout(self.config.backup_metadata_service)
        finally:
            for grant in grants:
                self.release_lock(task, grant, self.r_table_lock)

    def select_for_update(
        self, task: CancellableTask, table: int = 0, rows: float = 2e5
    ):
        """SELECT ... FOR UPDATE (case c4): exclusive table lock held long."""
        progress = GetNextProgress(total_rows=rows)
        task.progress_model = progress
        lock = self.table_locks[table % self.config.tables]
        slot = yield from self.acquire_slot(
            task, self.innodb_queue, self.r_innodb_queue, klass="heavy"
        )
        try:
            grant = yield from self.acquire_lock(
                task, lock, self.r_table_lock, exclusive=True
            )
            try:
                yield from self._stream_pages(
                    task, rows, progress, hold_pages=False
                )
            finally:
                self.release_lock(task, grant, self.r_table_lock)
        finally:
            # hold_pages=False releases per chunk, but a cancellation
            # mid-chunk leaves the current chunk's pages behind.
            self._release_streamed_pages(task)
            self.release_lock(task, slot, self.r_innodb_queue)

    def long_transaction(self, task: CancellableTask, duration: float = 10.0):
        """Long open transaction pinning undo history (case c3).

        Holds the undo latch shared for its whole lifetime; a queued
        exclusive purge behind it convoys every undo append.
        """
        progress = GetNextProgress(total_rows=max(1.0, duration * 100))
        task.progress_model = progress
        grant = yield from self.acquire_lock(
            task, self.undo_latch, self.r_undo_log, exclusive=False
        )
        try:
            step = max(duration / 50.0, 0.01)
            elapsed = 0.0
            while elapsed < duration:
                yield self.env.timeout(step)
                elapsed += step
                progress.advance(step * 100)
                yield from self.checkpoint(task)
        finally:
            self.release_lock(task, grant, self.r_undo_log)

    def purge(self, task: CancellableTask):
        """Background purge (case c3): exclusive undo latch, brief work."""
        grant = yield from self.acquire_lock(
            task, self.undo_latch, self.r_undo_log, exclusive=True
        )
        try:
            yield self.env.timeout(self.config.purge_service)
        finally:
            self.release_lock(task, grant, self.r_undo_log)

    def report_query(
        self,
        task: CancellableTask,
        pages: int = 800,
        duration: float = 5.0,
    ):
        """Reporting query pinning a working set for its whole runtime.

        Unlike a scan, it acquires its pages once up-front and then only
        computes -- so it coexists peacefully when the pool has headroom,
        but is a large *current* holder.  Used by the Fig 13 late-culprit
        scenario to separate current usage from future demand.
        """
        progress = GetNextProgress(total_rows=max(1.0, duration * 100))
        task.progress_model = progress
        outcome = self.buffer_pool.acquire(task, pages)
        self.trace_get(task, self.r_buffer_pool, outcome.acquired)
        try:
            if outcome.evicted:
                stall = outcome.evicted * self.config.evict_page_cost
                self.trace_slow_by(
                    task, self.r_buffer_pool, stall, outcome.evicted
                )
                yield self.env.timeout(stall)
            step = max(duration / 100.0, 0.01)
            elapsed = 0.0
            while elapsed < duration:
                yield self.env.timeout(step)
                elapsed += step
                progress.advance(step * 100)
                yield from self.checkpoint(task)
        finally:
            self._release_streamed_pages(task)

    def slow_query(self, task: CancellableTask, duration: float = 2.0):
        """Slow analytic query (case c2): holds an InnoDB slot for long."""
        progress = GetNextProgress(total_rows=max(1.0, duration * 100))
        task.progress_model = progress
        slot = yield from self.acquire_slot(
            task, self.innodb_queue, self.r_innodb_queue, klass="heavy"
        )
        try:
            step = max(duration / 40.0, 0.01)
            elapsed = 0.0
            while elapsed < duration:
                yield self.env.timeout(step)
                elapsed += step
                progress.advance(step * 100)
                yield from self.checkpoint(task)
        finally:
            self.release_lock(task, slot, self.r_innodb_queue)


def light_mix(rng: "Rng", tables: int = 5, select_weight: float = 0.7):
    """Sysbench-style lightweight mix: point selects + row updates."""
    from ..workloads.spec import MixEntry

    def make_select():
        return Operation("point_select", {"table": rng.randint(0, tables - 1)})

    def make_update():
        return Operation("row_update", {"table": rng.randint(0, tables - 1)})

    return [
        MixEntry(factory=make_select, weight=select_weight),
        MixEntry(factory=make_update, weight=1.0 - select_weight),
    ]
