"""Simulated MongoDB application model.

Models the application resources behind the two MongoDB extension cases
(c17/c18, post-paper additions to the Table 2 registry):

* **document cache** (MEMORY, case c18): a document-granularity LRU
  buffer with page packing
  (:class:`~repro.sim.resources.docbuffer.DocumentBuffer`).  A bulk
  insert of tiny documents floods the cache; because a page of a
  small-document collection packs dozens of documents, every page a
  victim re-faults must unlink dozens of LRU entries -- small documents
  make eviction slow, the failure mode the mongodb-d4 buffer analyzer
  documents.
* **collection locks** (LOCK, case c17): FIFO reader/writer locks, one
  per collection.  A *collection scan storm* takes the lock exclusively
  chunk by chunk -- release and re-acquire at every cursor batch -- so
  point reads convoy behind the storm's queued re-acquisitions.  The
  chunk-wise re-acquire is exactly the habitat where the
  lock-reshape lever (:mod:`repro.core.levers`) shines: parking the
  storm's queued grants lets readers overtake at chunk boundaries
  without losing the scans' work.
* **index latch** (LOCK): a shared latch writers briefly append under.

Handlers are instrumented with the ATROPOS tracing APIs at the same
sites as the other backends: document faults, eviction stalls, and
releases for the cache; grant/wait/release for the locks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..core.progress import GetNextProgress
from ..core.task import CancellableTask
from ..core.types import ResourceType
from ..sim.resources import DocumentBuffer, SyncLock
from .base import Application, Operation

if TYPE_CHECKING:  # pragma: no cover
    from ..core.controller import BaseController
    from ..sim.environment import Environment
    from ..sim.rng import Rng

#: Buffer owner token for the communal hot documents of point reads.
HOT_SET = "hot-set"

#: Collection holding the tiny documents the bulk-insert flood writes.
METRICS = "metrics"


@dataclass
class MongoDBConfig:
    """Sizing and service-time parameters (simulated seconds)."""

    collections: int = 4
    #: Cache page size; documents are packed into pages by size.
    page_size_bytes: int = 4096
    #: Document cache capacity in pages.
    buffer_pages: int = 1024
    #: User-collection document size (4 documents per 4 KiB page).
    doc_bytes: int = 1024
    #: Metrics-collection document size (64 documents per page): the
    #: small documents whose eviction is slow.
    small_doc_bytes: int = 64
    #: Hot documents per user collection point reads cycle over.
    hot_docs_per_collection: int = 800
    #: Documents one point read touches.
    docs_per_read: int = 3

    find_service: float = 0.004
    update_service: float = 0.005
    index_append_service: float = 0.0002
    #: Extra delay per document-cache miss (disk read), seconds.
    miss_penalty: float = 0.0015
    #: Delay per document unlinked during eviction (the packing-density
    #: cost: one page of metrics documents = 64 unlinks).
    evict_doc_cost: float = 0.0008
    #: Start with the hot documents resident (a warmed server).
    prewarm_hot_set: bool = True

    #: Documents a collection scan covers per second of lock hold.
    scan_rate_docs: float = 150_000.0
    #: Documents per scan cursor batch (lock released between batches).
    scan_chunk_docs: float = 600.0

    #: Documents a bulk insert writes per second.
    insert_rate_docs: float = 60_000.0
    #: Documents per bulk-insert batch (one checkpoint per batch).
    insert_batch_docs: float = 2_000.0


class MongoDB(Application):
    """The simulated MongoDB server."""

    name = "mongodb"

    def __init__(
        self,
        env: "Environment",
        controller: "BaseController",
        rng: "Rng",
        config: Optional[MongoDBConfig] = None,
    ) -> None:
        super().__init__(env, controller, rng)
        self.config = config or MongoDBConfig()
        cfg = self.config

        # --- internal resources (sim primitives) ---
        self.doc_cache = DocumentBuffer(
            env,
            "mongodb.doc_cache",
            capacity_pages=cfg.buffer_pages,
            page_size_bytes=cfg.page_size_bytes,
            evict_doc_cost=cfg.evict_doc_cost,
        )
        for i in range(cfg.collections):
            self.doc_cache.register_collection(
                self._collection(i), cfg.doc_bytes
            )
        self.doc_cache.register_collection(METRICS, cfg.small_doc_bytes)
        self.collection_locks: List[SyncLock] = [
            SyncLock(env, f"mongodb.collection_lock.{i}")
            for i in range(cfg.collections)
        ]
        self.index_latch = SyncLock(env, "mongodb.index_latch")

        # --- application resources registered with the controller ---
        self.r_doc_cache = self.register_resource(
            "doc_cache", ResourceType.MEMORY
        )
        self.r_collection_lock = self.register_resource(
            "collection_lock", ResourceType.LOCK
        )
        self.r_index_lock = self.register_resource(
            "index_lock", ResourceType.LOCK
        )
        self.instrumentation_sites = 14

        #: Monotonic id source for flood-inserted metrics documents
        #: (unique keys: a flood never re-touches what it wrote).
        self._metrics_seq = 0

        if cfg.prewarm_hot_set:
            for i in range(cfg.collections):
                self.doc_cache.access(
                    HOT_SET,
                    self._collection(i),
                    range(cfg.hot_docs_per_collection),
                )

        # --- handler registration ---
        self.register_handler("find_one", self.find_one)
        self.register_handler("update_one", self.update_one)
        self.register_handler("collection_scan", self.collection_scan)
        self.register_handler("bulk_insert", self.bulk_insert)

    @staticmethod
    def _collection(i: int) -> str:
        return f"users.{i}"

    # ------------------------------------------------------------------
    # Document cache access for point operations
    # ------------------------------------------------------------------
    def _touch_hot_docs(self, task: CancellableTask, coll: int) -> float:
        """Read hot documents; returns the extra delay from misses.

        Misses re-fault documents into the communal hot set (evicting
        LRU documents -- under a flood, the flood's tiny documents, paid
        for at packing density).  Mirrors the instrumentation of the
        other backends: get on fault-in, slow-by on the eviction path.
        """
        cfg = self.config
        ids = [
            self.rng.randint(0, cfg.hot_docs_per_collection - 1)
            for _ in range(cfg.docs_per_read)
        ]
        outcome = self.doc_cache.access(HOT_SET, self._collection(coll), ids)
        if outcome.misses == 0:
            return 0.0
        self.trace_get(task, self.r_doc_cache, outcome.misses)
        # The hot set is communal: the read does not keep documents, so
        # the attribution nets out immediately.
        self.trace_free(task, self.r_doc_cache, outcome.misses)
        evict_delay = outcome.evicted_docs * cfg.evict_doc_cost
        delay = outcome.misses * cfg.miss_penalty + evict_delay
        # Re-fault delay is contention-induced: with a warm cache,
        # misses only happen because something evicted the hot set.
        if outcome.evicted_docs:
            self.trace_slow_by(
                task, self.r_doc_cache, delay, outcome.evicted_docs
            )
        return delay

    # ------------------------------------------------------------------
    # Lightweight operations
    # ------------------------------------------------------------------
    def find_one(self, task: CancellableTask, collection: int = 0):
        """Point read: shared collection lock + hot-document lookups."""
        cfg = self.config
        coll = collection % cfg.collections
        lock = self.collection_locks[coll]
        grant = yield from self.acquire_lock(
            task, lock, self.r_collection_lock, exclusive=False
        )
        try:
            delay = self._touch_hot_docs(task, coll)
            yield self.env.timeout(cfg.find_service + delay)
            yield from self.checkpoint(task)
        finally:
            self.release_lock(task, grant, self.r_collection_lock)

    def update_one(self, task: CancellableTask, collection: int = 0):
        """Point update: shared collection lock + index append."""
        cfg = self.config
        coll = collection % cfg.collections
        lock = self.collection_locks[coll]
        grant = yield from self.acquire_lock(
            task, lock, self.r_collection_lock, exclusive=False
        )
        try:
            delay = self._touch_hot_docs(task, coll)
            latch = yield from self.acquire_lock(
                task, self.index_latch, self.r_index_lock, exclusive=False
            )
            try:
                yield self.env.timeout(cfg.index_append_service)
            finally:
                self.release_lock(task, latch, self.r_index_lock)
            yield self.env.timeout(cfg.update_service + delay)
            yield from self.checkpoint(task)
        finally:
            self.release_lock(task, grant, self.r_collection_lock)

    # ------------------------------------------------------------------
    # Heavyweight operations (the culprits)
    # ------------------------------------------------------------------
    def collection_scan(
        self, task: CancellableTask, collection: int = 0, docs: float = 6e4
    ):
        """Aggregation scan (case c17): exclusive lock, chunk by chunk.

        Takes the collection lock exclusively for each cursor batch and
        *releases it between batches* -- so under a storm the lock queue
        fills with scan re-acquisitions that FIFO-convoy point reads.
        The chunk-wise re-acquire is what makes the storm parkable by
        the lock-reshape lever: a parked scan simply waits longer for
        its next batch, no work is lost.
        """
        cfg = self.config
        progress = GetNextProgress(total_rows=docs)
        task.progress_model = progress
        coll = collection % cfg.collections
        lock = self.collection_locks[coll]
        remaining = docs
        while remaining > 0:
            chunk = min(cfg.scan_chunk_docs, remaining)
            grant = yield from self.acquire_lock(
                task, lock, self.r_collection_lock, exclusive=True
            )
            try:
                yield self.env.timeout(chunk / cfg.scan_rate_docs)
            finally:
                self.release_lock(task, grant, self.r_collection_lock)
            progress.advance(chunk)
            remaining -= chunk
            yield from self.checkpoint(task)

    def bulk_insert(self, task: CancellableTask, docs: float = 3e5):
        """Bulk insert of tiny metrics documents (case c18).

        Streams small documents into the cache under the task's own
        owner key (cancelling the task frees them).  The flood evicts
        the hot set, and -- because evicting one page of metrics
        documents means unlinking ``page_size // small_doc_bytes`` LRU
        entries -- every victim re-fault afterwards pays the
        small-document eviction walk.
        """
        cfg = self.config
        progress = GetNextProgress(total_rows=docs)
        task.progress_model = progress
        remaining = docs
        try:
            while remaining > 0:
                batch = int(min(cfg.insert_batch_docs, remaining))
                latch = yield from self.acquire_lock(
                    task, self.index_latch, self.r_index_lock, exclusive=False
                )
                try:
                    start = self._metrics_seq
                    self._metrics_seq += batch
                    outcome = self.doc_cache.access(
                        task, METRICS, range(start, start + batch)
                    )
                    self.trace_get(task, self.r_doc_cache, outcome.misses)
                    stall = outcome.evicted_docs * cfg.evict_doc_cost
                    if outcome.evicted_docs:
                        self.trace_slow_by(
                            task,
                            self.r_doc_cache,
                            stall,
                            outcome.evicted_docs,
                        )
                    yield self.env.timeout(
                        batch / cfg.insert_rate_docs + stall
                    )
                finally:
                    self.release_lock(task, latch, self.r_index_lock)
                progress.advance(batch)
                remaining -= batch
                yield from self.checkpoint(task)
        finally:
            released = self.doc_cache.release_owner(task)
            if released:
                self.trace_free(task, self.r_doc_cache, released)


def doc_mix(rng: "Rng", collections: int = 4, read_weight: float = 0.7):
    """YCSB-style point mix: find_one reads + update_one writes."""
    from ..workloads.spec import MixEntry

    def make_find():
        return Operation(
            "find_one", {"collection": rng.randint(0, collections - 1)}
        )

    def make_update():
        return Operation(
            "update_one", {"collection": rng.randint(0, collections - 1)}
        )

    return [
        MixEntry(factory=make_find, weight=read_weight),
        MixEntry(factory=make_update, weight=1.0 - read_weight),
    ]
