"""Simulated etcd application model.

Models case c16: etcd's backend (bbolt) serializes writers behind its
key-space lock; a complex/long read transaction holds the read side so
long that write commits -- and everything FIFO-queued behind them --
convoy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.progress import GetNextProgress
from ..core.task import CancellableTask
from ..core.types import ResourceType
from ..sim.resources import SyncLock
from .base import Application

if TYPE_CHECKING:  # pragma: no cover
    from ..core.controller import BaseController
    from ..sim.environment import Environment
    from ..sim.rng import Rng


@dataclass
class EtcdConfig:
    """Sizing and service-time parameters (simulated seconds)."""

    get_service: float = 0.002
    put_service: float = 0.004
    #: Default runtime of a complex range read (holds the kv read lock).
    range_read_service: float = 4.0
    step: float = 0.05


class Etcd(Application):
    """The simulated etcd server."""

    name = "etcd"

    def __init__(
        self,
        env: "Environment",
        controller: "BaseController",
        rng: "Rng",
        config: Optional[EtcdConfig] = None,
    ) -> None:
        super().__init__(env, controller, rng)
        self.config = config or EtcdConfig()

        self.kv_lock = SyncLock(env, "etcd.kv_lock")
        self.r_kv_lock = self.register_resource("kv_lock", ResourceType.LOCK)
        self.instrumentation_sites = 6

        self.register_handler("get", self.get)
        self.register_handler("put", self.put)
        self.register_handler("range_read", self.range_read)

    def get(self, task: CancellableTask):
        """Point read: brief shared kv-lock hold."""
        grant = yield from self.acquire_lock(
            task, self.kv_lock, self.r_kv_lock, exclusive=False
        )
        try:
            yield self.env.timeout(self.config.get_service)
            yield from self.checkpoint(task)
        finally:
            self.release_lock(task, grant, self.r_kv_lock)

    def put(self, task: CancellableTask):
        """Write: exclusive kv-lock commit."""
        grant = yield from self.acquire_lock(
            task, self.kv_lock, self.r_kv_lock, exclusive=True
        )
        try:
            yield self.env.timeout(self.config.put_service)
            yield from self.checkpoint(task)
        finally:
            self.release_lock(task, grant, self.r_kv_lock)

    def range_read(
        self, task: CancellableTask, duration: Optional[float] = None
    ):
        """Complex read transaction holding the kv read lock (c16)."""
        cfg = self.config
        runtime = duration if duration is not None else cfg.range_read_service
        progress = GetNextProgress(total_rows=max(1.0, runtime * 100))
        task.progress_model = progress
        grant = yield from self.acquire_lock(
            task, self.kv_lock, self.r_kv_lock, exclusive=False
        )
        try:
            elapsed = 0.0
            while elapsed < runtime:
                step = min(cfg.step, runtime - elapsed)
                yield self.env.timeout(step)
                elapsed += step
                progress.advance(step * 100)
                yield from self.checkpoint(task)
        finally:
            self.release_lock(task, grant, self.r_kv_lock)
