"""Simulated PostgreSQL application model.

Models the application resources behind cases c6-c8:

* **MVCC table access** (LOCK, c6): a large write transaction accumulates
  dead tuples; concurrent readers pay a version-chain penalty that grows
  with the bloat.  Cancelling the writer stops the growth and rolls the
  bloat back.
* **WAL insert lock** (LOCK, c7): a background checkpoint/flush task holds
  the WAL lock for a duration proportional to the pending WAL backlog
  (group insertion); foreground commits convoy behind it.
* **system I/O** (IO, c8): a vacuum process issues bulk I/O that queues
  ahead of small foreground reads on a bounded-depth disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..core.progress import GetNextProgress
from ..core.task import CancellableTask
from ..core.types import ResourceType
from ..sim.resources import DiskIO, SyncLock
from .base import Application

if TYPE_CHECKING:  # pragma: no cover
    from ..core.controller import BaseController
    from ..sim.environment import Environment
    from ..sim.rng import Rng


@dataclass
class PostgresConfig:
    """Sizing and service-time parameters (simulated seconds)."""

    tables: int = 4
    select_service: float = 0.004
    update_service: float = 0.005

    #: Penalty per dead tuple a reader must skip, seconds.
    dead_tuple_penalty: float = 5e-8
    #: Cap on the MVCC penalty per query, seconds.
    mvcc_penalty_cap: float = 0.08
    #: Rows a bulk writer processes per second.
    bulk_write_rate: float = 150_000.0
    #: Rows per bulk-write chunk.
    bulk_chunk_rows: float = 10_000.0

    #: WAL bytes per lightweight write.
    wal_bytes_per_write: float = 4e3
    #: WAL bytes per bulk-written row.
    wal_bytes_per_bulk_row: float = 400.0
    #: WAL flush bandwidth, bytes/second.
    wal_flush_bandwidth: float = 40e6
    #: Base WAL flush duration, seconds.
    wal_flush_base: float = 0.01
    #: WAL append latch hold, seconds.
    wal_append_service: float = 0.0002

    #: Disk parameters (case c8).
    disk_bandwidth: float = 100e6
    disk_op_latency: float = 0.0002
    disk_queue_depth: int = 4
    #: Bytes read by a small foreground query that goes to disk.
    read_io_bytes: float = 16e3
    #: Fraction of selects that need disk I/O.
    read_io_fraction: float = 0.3
    #: Bytes the vacuum reads+writes per chunk.
    vacuum_chunk_bytes: float = 4e6
    #: Total bytes a vacuum pass processes.
    vacuum_total_bytes: float = 200e6


class PostgreSQL(Application):
    """The simulated PostgreSQL server."""

    name = "postgres"

    def __init__(
        self,
        env: "Environment",
        controller: "BaseController",
        rng: "Rng",
        config: Optional[PostgresConfig] = None,
    ) -> None:
        super().__init__(env, controller, rng)
        self.config = config or PostgresConfig()
        cfg = self.config

        self.table_locks = [
            SyncLock(env, f"postgres.table_lock.{i}") for i in range(cfg.tables)
        ]
        self.wal_lock = SyncLock(env, "postgres.wal_lock")
        self.disk = DiskIO(
            env,
            "postgres.disk",
            bandwidth_bytes_per_sec=cfg.disk_bandwidth,
            op_latency=cfg.disk_op_latency,
            queue_depth=cfg.disk_queue_depth,
        )

        self.r_table_lock = self.register_resource(
            "table_lock", ResourceType.LOCK
        )
        self.r_wal = self.register_resource("wal", ResourceType.LOCK)
        self.r_io = self.register_resource("system_io", ResourceType.IO)
        self.instrumentation_sites = 15

        #: Dead tuples per table (MVCC bloat, case c6).
        self.dead_tuples: Dict[int, float] = {i: 0.0 for i in range(cfg.tables)}
        #: Pending (unflushed) WAL bytes (case c7).
        self.wal_pending = 0.0

        self.register_handler("select", self.select)
        self.register_handler("update", self.update)
        self.register_handler("bulk_update", self.bulk_update)
        self.register_handler("wal_flush", self.wal_flush)
        self.register_handler("vacuum", self.vacuum)

    # ------------------------------------------------------------------
    # MVCC helpers
    # ------------------------------------------------------------------
    def _mvcc_penalty(self, table: int) -> float:
        penalty = self.dead_tuples[table] * self.config.dead_tuple_penalty
        return min(penalty, self.config.mvcc_penalty_cap)

    # ------------------------------------------------------------------
    # Foreground operations
    # ------------------------------------------------------------------
    def select(self, task: CancellableTask, table: int = 0):
        """Read query: version-chain penalty + occasional disk read."""
        cfg = self.config
        table = table % cfg.tables
        penalty = self._mvcc_penalty(table)
        if penalty > 0:
            # The reader is slowed by dead versions: attribute the delay
            # to the table resource the bloating writer is holding.
            self.trace_slow_by(task, self.r_table_lock, penalty)
        yield self.env.timeout(cfg.select_service + penalty)
        if self.rng.chance(cfg.read_io_fraction):
            yield from self._disk_io(task, cfg.read_io_bytes)
        yield from self.checkpoint(task)

    def update(self, task: CancellableTask, table: int = 0):
        """Write query: row update + WAL append."""
        cfg = self.config
        table = table % cfg.tables
        grant = yield from self.acquire_lock(
            task,
            self.table_locks[table],
            self.r_table_lock,
            exclusive=False,
        )
        try:
            penalty = self._mvcc_penalty(table)
            if penalty > 0:
                self.trace_slow_by(task, self.r_table_lock, penalty)
            yield self.env.timeout(cfg.update_service + penalty)
            yield from self._wal_append(task, cfg.wal_bytes_per_write)
            yield from self.checkpoint(task)
        finally:
            self.release_lock(task, grant, self.r_table_lock)

    # ------------------------------------------------------------------
    # Case c6: bulk writer bloating a table
    # ------------------------------------------------------------------
    def bulk_update(
        self, task: CancellableTask, table: int = 0, rows: float = 1e6
    ):
        """Large UPDATE: accumulates dead tuples readers must skip."""
        cfg = self.config
        table = table % cfg.tables
        progress = GetNextProgress(total_rows=rows)
        task.progress_model = progress
        grant = yield from self.acquire_lock(
            task,
            self.table_locks[table],
            self.r_table_lock,
            exclusive=False,
        )
        written = 0.0
        try:
            remaining = rows
            while remaining > 0:
                chunk = min(cfg.bulk_chunk_rows, remaining)
                yield self.env.timeout(chunk / cfg.bulk_write_rate)
                self.dead_tuples[table] += chunk
                written += chunk
                progress.advance(chunk)
                remaining -= chunk
                yield from self._wal_append(
                    task, chunk * cfg.wal_bytes_per_bulk_row
                )
                yield from self.checkpoint(task)
        except BaseException:
            # Rollback: the aborted transaction's versions are reclaimed.
            self.dead_tuples[table] = max(
                0.0, self.dead_tuples[table] - written
            )
            raise
        finally:
            self.release_lock(task, grant, self.r_table_lock)

    # ------------------------------------------------------------------
    # Case c7: WAL group insertion
    # ------------------------------------------------------------------
    def _wal_append(self, task: CancellableTask, nbytes: float):
        grant = yield from self.acquire_lock(
            task, self.wal_lock, self.r_wal, exclusive=False
        )
        try:
            self.wal_pending += nbytes
            yield self.env.timeout(self.config.wal_append_service)
        finally:
            self.release_lock(task, grant, self.r_wal)

    def wal_flush(self, task: CancellableTask):
        """Background flush: holds the WAL lock for backlog/bandwidth."""
        cfg = self.config
        grant = yield from self.acquire_lock(
            task, self.wal_lock, self.r_wal, exclusive=True
        )
        try:
            # Flush in chunks so cancellation checkpoints exist mid-flush.
            while self.wal_pending > 0:
                chunk = min(self.wal_pending, cfg.wal_flush_bandwidth * 0.05)
                yield self.env.timeout(
                    cfg.wal_flush_base + chunk / cfg.wal_flush_bandwidth
                )
                self.wal_pending -= chunk
                yield from self.checkpoint(task)
        finally:
            self.release_lock(task, grant, self.r_wal)

    # ------------------------------------------------------------------
    # Case c8: vacuum I/O
    # ------------------------------------------------------------------
    def _disk_io(self, task: CancellableTask, nbytes: float):
        """One traced disk I/O (wait in device queue + transfer)."""
        slot = yield from self.acquire_slot(
            task, self.disk.queue, self.r_io, klass="io"
        )
        try:
            yield self.env.timeout(self.disk._service_time(nbytes))
            self.disk.bytes_by_owner[task] = (
                self.disk.bytes_by_owner.get(task, 0.0) + nbytes
            )
            self.disk.total_bytes += nbytes
            self.trace_get(task, self.r_io, nbytes)
        finally:
            self.release_lock(task, slot, self.r_io)

    def vacuum(self, task: CancellableTask, total_bytes: Optional[float] = None):
        """Autovacuum pass: bulk I/O + dead-tuple reclamation."""
        cfg = self.config
        total = total_bytes if total_bytes is not None else cfg.vacuum_total_bytes
        progress = GetNextProgress(total_rows=total)
        task.progress_model = progress
        done = 0.0
        while done < total:
            chunk = min(cfg.vacuum_chunk_bytes, total - done)
            yield from self._disk_io(task, chunk)
            done += chunk
            progress.advance(chunk)
            # Vacuum reclaims bloat as it goes.
            share = chunk / total
            for table in self.dead_tuples:
                self.dead_tuples[table] = max(
                    0.0, self.dead_tuples[table] * (1.0 - share)
                )
            yield from self.checkpoint(task)
