"""Simulated application models instrumented with the controller APIs."""

from .apache import Apache, ApacheConfig
from .base import Application, Operation
from .elasticsearch import Elasticsearch, ElasticsearchConfig
from .etcd import Etcd, EtcdConfig
from .mongodb import MongoDB, MongoDBConfig
from .mysql import MySQL, MySQLConfig
from .postgres import PostgreSQL, PostgresConfig
from .solr import Solr, SolrConfig

__all__ = [
    "Apache",
    "ApacheConfig",
    "Application",
    "Elasticsearch",
    "ElasticsearchConfig",
    "Etcd",
    "EtcdConfig",
    "MongoDB",
    "MongoDBConfig",
    "MySQL",
    "MySQLConfig",
    "Operation",
    "PostgreSQL",
    "PostgresConfig",
    "Solr",
    "SolrConfig",
]
