"""Autothrottle-style bi-level latency control [Wang et al., NSDI '24].

Autothrottle (arxiv 2212.12180) splits SLO management in two: a
lightweight **fast loop** per service tracks a local latency target by
throttling the service's CPU allocation, while a global **slow loop**
("the tower") watches end-to-end SLO attainment and redistributes the
per-service targets.  The simulation analogue of a CFS-quota throttle
is the application's worker pool: the fast loop resizes the widest
:class:`~repro.sim.resources.threadpool.ThreadPool` on the bound app
(queueing, never killing, excess work).  Backends without a pool
(PostgreSQL's lock/disk model) are squeezed with per-checkpoint
throttle delays instead.

The fast loop is a plain pipeline stage
(:class:`AutothrottleResizeAction` driven by the shared
:class:`~repro.core.pipeline.LatencyWindowSource`); the slow loop
(:class:`AutothrottleTower`) lives wherever the global view lives --
the mesh epoch loop runs it in the coordinator's slow-loop seat and
delivers new targets to each service as epoch-boundary directives
(:meth:`Autothrottle.set_target`).

Like DAGOR it never cancels: an in-flight culprit keeps its resources,
and throttling stretches *everyone's* service time -- which is exactly
the contrast `experiments/dag_overload.py` measures against targeted
cancellation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..core.controller import BaseController
from ..core.pipeline import ActionPolicy, ControlPipeline, LatencyWindowSource
from ..sim.resources.threadpool import ThreadPool

if TYPE_CHECKING:  # pragma: no cover
    from ..core.task import CancellableTask
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord


class AutothrottleResizeAction(ActionPolicy):
    """The per-service fast loop: track the target by squeezing workers.

    Window tail above the target: multiplicative shrink of the
    concurrency limit.  Comfortably below (or no samples): grow back
    one worker at a time toward the pool's nominal size.
    """

    name = "autothrottle-resize"

    def __init__(self, controller: "Autothrottle") -> None:
        self.controller = controller

    def bind(self, app) -> None:
        c = self.controller
        pools = [
            value for value in vars(app).values()
            if isinstance(value, ThreadPool)
        ]
        if pools:
            c.pool = max(pools, key=lambda p: p.nominal_workers)
            c.nominal_workers = c.pool.nominal_workers
            c.limit = c.nominal_workers

    def act(self, now: float, signals: Dict[str, Any]) -> None:
        c = self.controller
        tail = signals.get("tail_latency", float("nan"))
        has_sample = tail == tail
        if has_sample and tail > c.target:
            c.last_violation = True
            c.limit = max(c.min_workers, int(c.limit * c.shrink))
            if c.pool is None:
                c.squeeze_delay = min(
                    c.max_squeeze, max(c.base_squeeze, c.squeeze_delay * 2.0)
                )
        elif not has_sample or tail < c.relax_fraction * c.target:
            c.last_violation = False
            c.limit = min(c.nominal_workers, c.limit + 1)
            c.squeeze_delay = (
                0.0 if c.squeeze_delay < c.base_squeeze
                else c.squeeze_delay * 0.5
            )
        if c.pool is not None and c.pool.workers != c.limit:
            c.pool.resize(c.limit)
            c.resize_moves += 1
        signals["throttle_limit"] = c.limit


class Autothrottle(BaseController):
    """Per-service fast-loop throttle with a settable latency target."""

    name = "autothrottle"

    def __init__(
        self,
        env: "Environment",
        slo_latency: float = 0.05,
        adjust_period: float = 0.2,
        target: Optional[float] = None,
        min_workers: int = 1,
        shrink: float = 0.6,
        relax_fraction: float = 0.7,
    ) -> None:
        super().__init__(env)
        self.slo_latency = slo_latency
        #: The local latency target the tower redistributes.
        self.target = 0.8 * slo_latency if target is None else target
        self.min_workers = min_workers
        self.shrink = shrink
        self.relax_fraction = relax_fraction
        #: Bound worker pool (None for pool-less backends).
        self.pool: Optional[ThreadPool] = None
        self.nominal_workers = 16
        self.limit = self.nominal_workers
        #: Checkpoint squeeze for pool-less backends, seconds.
        self.squeeze_delay = 0.0
        self.base_squeeze = slo_latency / 100.0
        self.max_squeeze = slo_latency / 2.0
        self.resize_moves = 0
        self.target_moves = 0
        self.last_violation = False
        self._window_source = LatencyWindowSource(
            env, horizon=1.0, percentile=99
        )
        self.pipeline = ControlPipeline(
            env,
            period=adjust_period,
            sources=[self._window_source],
            action=AutothrottleResizeAction(self),
        )

    @property
    def window(self):
        """The completion window (owned by the pipeline's source)."""
        return self._window_source.window

    def set_target(self, target: float) -> None:
        """Slow-loop entry point: the tower moved this service's target."""
        target = max(1e-6, float(target))
        if target != self.target:
            self.target = target
            self.target_moves += 1

    def bind(self, app) -> None:
        self.pipeline.bind(app)

    def throttle_delay(self, task: "CancellableTask") -> float:
        return self.squeeze_delay

    def observe_completion(self, record: "RequestRecord") -> None:
        self.pipeline.observe_completion(record)

    def start(self) -> None:
        self.pipeline.start()

    def telemetry_snapshot(self) -> Dict[str, Any]:
        snap = super().telemetry_snapshot()
        detector = self._window_source.telemetry_snapshot()
        detector["overloaded"] = 1.0 if self.last_violation else 0.0
        snap["detector"] = detector
        snap["throttle"] = {
            "target": self.target,
            "limit": self.limit,
            "nominal_workers": self.nominal_workers,
            "squeeze_delay": self.squeeze_delay,
            "resize_moves": self.resize_moves,
            "target_moves": self.target_moves,
        }
        return snap


class AutothrottleTower:
    """The global slow loop: redistribute per-service latency targets.

    Runs in the mesh coordinator's slow-loop seat, once per
    ``tower_period``: when end-to-end victim p99 violates the SLO it
    tightens the target of the service currently showing the worst
    window tail (squeeze the latency where it lives); otherwise it
    relaxes every target back toward the SLO.
    """

    name = "autothrottle-tower"

    def __init__(
        self,
        services: List[str],
        slo_latency: float,
        slack: float = 1.5,
        shrink: float = 0.7,
        grow: float = 1.1,
    ) -> None:
        self.slo_latency = slo_latency
        self.slack = slack
        self.shrink = shrink
        self.grow = grow
        self.floor = 0.05 * slo_latency
        self.cap = slo_latency
        self.targets: Dict[str, float] = {
            name: 0.8 * slo_latency for name in services
        }
        self.moves: List[Dict[str, Any]] = []

    def update(
        self,
        epoch: int,
        t: float,
        e2e_p99: float,
        service_p99: Dict[str, float],
    ) -> Dict[str, float]:
        """One slow-loop pass; returns the (possibly moved) targets."""
        violated = e2e_p99 == e2e_p99 and (
            e2e_p99 > self.slo_latency * self.slack
        )
        if violated:
            worst, worst_p99 = None, -1.0
            for name in sorted(self.targets):
                p99 = service_p99.get(name, float("nan"))
                if p99 == p99 and p99 > worst_p99:
                    worst, worst_p99 = name, p99
            if worst is not None:
                self._move(epoch, t, worst,
                           max(self.floor, self.targets[worst] * self.shrink))
        else:
            for name in sorted(self.targets):
                self._move(epoch, t, name,
                           min(self.cap, self.targets[name] * self.grow))
        return dict(self.targets)

    def _move(self, epoch: int, t: float, name: str, target: float) -> None:
        if target == self.targets[name]:
            return
        self.targets[name] = target
        self.moves.append({
            "epoch": epoch,
            "t": round(t, 9),
            "service": name,
            "target": round(target, 9),
        })
