"""Breakwater baseline [Cho et al., OSDI '20].

Credit-based admission control for microsecond-scale RPCs: the server
computes a credit pool from observed queueing delay against a target
(AQM-style additive-increase / multiplicative-decrease with
overcommitment) and clients may only issue requests while holding a
credit.  Effective against demand overload; blind to application
resource overload, since the global delay signal cannot say *which*
request monopolizes what (§2.2's critique).

The paper uses Breakwater's detector shape inside ATROPOS (§3.3) and
places the full system in Figure 1's design space; this implementation
completes the comparison set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.controller import BaseController
from ..core.task import CancellableTask
from ..sim.metrics import SlidingWindow

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord


class Breakwater(BaseController):
    """Credit-based admission keyed on queueing delay."""

    name = "breakwater"

    def __init__(
        self,
        env: "Environment",
        target_delay: float = 0.02,
        adjust_period: float = 0.1,
        initial_credits: int = 64,
        min_credits: int = 4,
        max_credits: int = 4096,
        additive_increase: int = 4,
        multiplicative_decrease: float = 0.8,
        overcommit: float = 1.1,
    ) -> None:
        """
        Args:
            target_delay: queueing-delay target d_t; credits shrink when
                the observed delay exceeds it.
            overcommit: credits are slightly overcommitted relative to
                inflight demand so idle capacity is never stranded.
        """
        super().__init__(env)
        self.target_delay = target_delay
        self.adjust_period = adjust_period
        self.credits = float(initial_credits)
        self.min_credits = min_credits
        self.max_credits = max_credits
        self.additive_increase = additive_increase
        self.multiplicative_decrease = multiplicative_decrease
        self.overcommit = overcommit
        self.window = SlidingWindow(horizon=1.0)
        #: Requests currently holding a credit (executing).
        self.inflight = 0
        self.rejections = 0
        #: Sum of service-time estimates, for delay decomposition.
        self._service_estimate = 0.005

    # ------------------------------------------------------------------
    # Credit pool adjustment (AIMD on queueing delay)
    # ------------------------------------------------------------------
    def observe_completion(self, record: "RequestRecord") -> None:
        if record.completed:
            self.window.observe(record.finish_time, record.latency)

    def _queueing_delay(self) -> float:
        """Observed delay in excess of the service-time estimate."""
        mean = self.window.mean_latency(self.env.now)
        if mean != mean:  # nan
            return 0.0
        return max(0.0, mean - self._service_estimate)

    def start(self) -> None:
        self.env.process(self._adjust_loop())

    def _adjust_loop(self):
        while True:
            yield self.env.timeout(self.adjust_period)
            delay = self._queueing_delay()
            if delay > self.target_delay:
                self.credits = max(
                    float(self.min_credits),
                    self.credits * self.multiplicative_decrease,
                )
            else:
                self.credits = min(
                    float(self.max_credits),
                    self.credits + self.additive_increase,
                )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, op_name: str, client_id: str) -> bool:
        limit = self.credits * self.overcommit
        if self.inflight < limit:
            return True
        self.rejections += 1
        return False

    def create_cancel(self, *args, **kwargs) -> CancellableTask:
        task = super().create_cancel(*args, **kwargs)
        self.inflight += 1
        return task

    def free_cancel(self, task: CancellableTask) -> None:
        if id(task) in self.tasks:
            self.inflight = max(0, self.inflight - 1)
        super().free_cancel(task)
