"""Breakwater baseline [Cho et al., OSDI '20].

Credit-based admission control for microsecond-scale RPCs: the server
computes a credit pool from observed queueing delay against a target
(AQM-style additive-increase / multiplicative-decrease with
overcommitment) and clients may only issue requests while holding a
credit.  Effective against demand overload; blind to application
resource overload, since the global delay signal cannot say *which*
request monopolizes what (§2.2's critique).

The paper uses Breakwater's detector shape inside ATROPOS (§3.3) and
places the full system in Figure 1's design space; this implementation
completes the comparison set.

Pipeline composition: the shared
:class:`~repro.core.pipeline.LatencyWindowSource` feeds the window mean
to :class:`BreakwaterCreditAction`, which applies the credit AIMD.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from ..core.controller import BaseController
from ..core.pipeline import ActionPolicy, ControlPipeline, LatencyWindowSource
from ..core.task import CancellableTask

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord


class BreakwaterCreditAction(ActionPolicy):
    """AIMD update of the credit pool keyed on queueing delay."""

    name = "breakwater-credits"

    def __init__(self, controller: "Breakwater") -> None:
        self.controller = controller

    def act(self, now: float, signals: Dict[str, Any]) -> None:
        c = self.controller
        mean = signals.get("mean_latency", float("nan"))
        if mean != mean:  # nan: no completions in the window
            delay = 0.0
        else:
            delay = max(0.0, mean - c._service_estimate)
        violated = delay > c.target_delay
        c.last_violation = violated
        if violated:
            c.credits = max(
                float(c.min_credits),
                c.credits * c.multiplicative_decrease,
            )
        else:
            c.credits = min(
                float(c.max_credits),
                c.credits + c.additive_increase,
            )


class Breakwater(BaseController):
    """Credit-based admission keyed on queueing delay."""

    name = "breakwater"

    def __init__(
        self,
        env: "Environment",
        target_delay: float = 0.02,
        adjust_period: float = 0.1,
        initial_credits: int = 64,
        min_credits: int = 4,
        max_credits: int = 4096,
        additive_increase: int = 4,
        multiplicative_decrease: float = 0.8,
        overcommit: float = 1.1,
    ) -> None:
        """
        Args:
            target_delay: queueing-delay target d_t; credits shrink when
                the observed delay exceeds it.
            overcommit: credits are slightly overcommitted relative to
                inflight demand so idle capacity is never stranded.
        """
        super().__init__(env)
        self.target_delay = target_delay
        self.adjust_period = adjust_period
        self.credits = float(initial_credits)
        self.min_credits = min_credits
        self.max_credits = max_credits
        self.additive_increase = additive_increase
        self.multiplicative_decrease = multiplicative_decrease
        self.overcommit = overcommit
        #: Requests currently holding a credit (executing).
        self.inflight = 0
        self.rejections = 0
        #: Whether the last adjustment window violated the delay target.
        self.last_violation = False
        #: Sum of service-time estimates, for delay decomposition.
        self._service_estimate = 0.005
        self._window_source = LatencyWindowSource(
            env, horizon=1.0, percentile=99
        )
        self.pipeline = ControlPipeline(
            env,
            period=adjust_period,
            sources=[self._window_source],
            action=BreakwaterCreditAction(self),
        )

    @property
    def window(self):
        """The completion window (owned by the pipeline's signal source)."""
        return self._window_source.window

    # ------------------------------------------------------------------
    # Credit pool adjustment (AIMD on queueing delay)
    # ------------------------------------------------------------------
    def observe_completion(self, record: "RequestRecord") -> None:
        self.pipeline.observe_completion(record)

    def _queueing_delay(self) -> float:
        """Observed delay in excess of the service-time estimate."""
        mean = self.window.mean_latency(self.env.now)
        if mean != mean:  # nan
            return 0.0
        return max(0.0, mean - self._service_estimate)

    def start(self) -> None:
        self.pipeline.start()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, op_name: str, client_id: str) -> bool:
        limit = self.credits * self.overcommit
        if self.inflight < limit:
            return True
        self.rejections += 1
        return False

    def create_cancel(self, *args, **kwargs) -> CancellableTask:
        task = super().create_cancel(*args, **kwargs)
        self.inflight += 1
        return task

    def free_cancel(self, task: CancellableTask) -> None:
        if id(task) in self.tasks:
            self.inflight = max(0, self.inflight - 1)
        super().free_cancel(task)

    def telemetry_snapshot(self) -> Dict[str, Any]:
        snap = super().telemetry_snapshot()
        detector = self._window_source.telemetry_snapshot()
        detector["overloaded"] = 1.0 if self.last_violation else 0.0
        snap["detector"] = detector
        snap["admission"] = {
            "credits": self.credits,
            "inflight": self.inflight,
            "rejections": self.rejections,
        }
        return snap
