"""SEDA-style adaptive admission control [Welsh & Culler, USITS '03].

Classic overload control from the design space of Figure 1: an AIMD rate
limiter at admission driven by observed tail latency.  It protects the
system from *demand* overload but is indiscriminate -- it cannot tell
culprit from victim, so under application resource overload it sheds
load across the board.

Pipeline composition: a shared
:class:`~repro.core.pipeline.LatencyWindowSource` produces the window
statistics and :class:`SedaRateAction` applies the AIMD update, the same
signal -> action split every controller in this repo uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from ..core.controller import BaseController
from ..core.pipeline import ActionPolicy, ControlPipeline, LatencyWindowSource

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord


class SedaRateAction(ActionPolicy):
    """AIMD update of the admission rate keyed on the window tail."""

    name = "seda-aimd"

    def __init__(self, controller: "Seda") -> None:
        self.controller = controller

    def act(self, now: float, signals: Dict[str, Any]) -> None:
        c = self.controller
        tail = signals.get("tail_latency", float("nan"))
        violated = tail == tail and tail > c.slo_latency  # nan-safe
        c.last_violation = violated
        if violated:
            c.rate = max(c.min_rate, c.rate * c.multiplicative_decrease)
        else:
            c.rate += c.additive_increase


class Seda(BaseController):
    """AIMD token-bucket admission keyed on tail latency."""

    name = "seda"

    def __init__(
        self,
        env: "Environment",
        slo_latency: float = 0.05,
        adjust_period: float = 0.2,
        initial_rate: float = 1000.0,
        min_rate: float = 10.0,
        additive_increase: float = 25.0,
        multiplicative_decrease: float = 0.7,
    ) -> None:
        super().__init__(env)
        self.slo_latency = slo_latency
        self.adjust_period = adjust_period
        self.rate = initial_rate
        self.min_rate = min_rate
        self.additive_increase = additive_increase
        self.multiplicative_decrease = multiplicative_decrease
        self._tokens = initial_rate * adjust_period
        self._last_refill = env.now
        self.rejections = 0
        #: Whether the last adjustment window violated the SLO.
        self.last_violation = False
        self._window_source = LatencyWindowSource(
            env, horizon=1.0, percentile=99
        )
        self.pipeline = ControlPipeline(
            env,
            period=adjust_period,
            sources=[self._window_source],
            action=SedaRateAction(self),
        )

    @property
    def window(self):
        """The completion window (owned by the pipeline's signal source)."""
        return self._window_source.window

    def _refill(self) -> None:
        now = self.env.now
        elapsed = now - self._last_refill
        if elapsed > 0:
            cap = self.rate * self.adjust_period
            self._tokens = min(cap, self._tokens + elapsed * self.rate)
            self._last_refill = now

    def admit(self, op_name: str, client_id: str) -> bool:
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        self.rejections += 1
        return False

    def observe_completion(self, record: "RequestRecord") -> None:
        self.pipeline.observe_completion(record)

    def start(self) -> None:
        self.pipeline.start()

    def telemetry_snapshot(self) -> Dict[str, Any]:
        snap = super().telemetry_snapshot()
        detector = self._window_source.telemetry_snapshot()
        detector["overloaded"] = 1.0 if self.last_violation else 0.0
        snap["detector"] = detector
        snap["admission"] = {
            "rate": self.rate,
            "tokens": self._tokens,
            "rejections": self.rejections,
        }
        return snap
