"""SEDA-style adaptive admission control [Welsh & Culler, USITS '03].

Classic overload control from the design space of Figure 1: an AIMD rate
limiter at admission driven by observed tail latency.  It protects the
system from *demand* overload but is indiscriminate -- it cannot tell
culprit from victim, so under application resource overload it sheds
load across the board.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.controller import BaseController
from ..sim.metrics import SlidingWindow

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord


class Seda(BaseController):
    """AIMD token-bucket admission keyed on tail latency."""

    name = "seda"

    def __init__(
        self,
        env: "Environment",
        slo_latency: float = 0.05,
        adjust_period: float = 0.2,
        initial_rate: float = 1000.0,
        min_rate: float = 10.0,
        additive_increase: float = 25.0,
        multiplicative_decrease: float = 0.7,
    ) -> None:
        super().__init__(env)
        self.slo_latency = slo_latency
        self.adjust_period = adjust_period
        self.rate = initial_rate
        self.min_rate = min_rate
        self.additive_increase = additive_increase
        self.multiplicative_decrease = multiplicative_decrease
        self.window = SlidingWindow(horizon=1.0)
        self._tokens = initial_rate * adjust_period
        self._last_refill = env.now
        self.rejections = 0

    def _refill(self) -> None:
        now = self.env.now
        elapsed = now - self._last_refill
        if elapsed > 0:
            cap = self.rate * self.adjust_period
            self._tokens = min(cap, self._tokens + elapsed * self.rate)
            self._last_refill = now

    def admit(self, op_name: str, client_id: str) -> bool:
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        self.rejections += 1
        return False

    def observe_completion(self, record: "RequestRecord") -> None:
        if record.completed:
            self.window.observe(record.finish_time, record.latency)

    def start(self) -> None:
        self.env.process(self._adjust_loop())

    def _adjust_loop(self):
        while True:
            yield self.env.timeout(self.adjust_period)
            tail = self.window.latency_percentile(self.env.now, 99)
            if tail == tail and tail > self.slo_latency:  # nan-safe
                self.rate = max(
                    self.min_rate, self.rate * self.multiplicative_decrease
                )
            else:
                self.rate += self.additive_increase
