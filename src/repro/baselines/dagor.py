"""DAGOR-style priority/user-level admission [Zhou et al., SoCC '18].

WeChat's overload control (arxiv 1806.04075): every request carries a
*business priority* (how critical the op is) and a *user level* (a
stable hash of the client), combined into one compound priority.  Each
service keeps an **admission level** -- the highest compound priority it
still admits -- and adjusts it between windows: overloaded windows
lower the level (shedding the least-critical business class user-slice
by user-slice), healthy windows raise it one notch at a time.  The
current level is exported as *upstream feedback* so callers can shed
doomed RPCs before sending them (the mesh tier reads
:attr:`Dagor.admit_level` at epoch boundaries).

Like every baseline here it is indiscriminate about *cause*: it cannot
cancel an admitted culprit, only refuse future work, so an in-flight
heavy task keeps its resources until it finishes.

Pipeline composition: a shared
:class:`~repro.core.pipeline.LatencyWindowSource` feeds
:class:`DagorLevelAdaptation` (the between-window level adjustment --
an :class:`~repro.core.pipeline.AdaptationPolicy`, since it moves the
live admission threshold) and :class:`DagorFeedbackAction` (the
per-window action: publish the feedback snapshot upstream and roll the
window's rejection counter).
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..core.controller import BaseController
from ..core.pipeline import (
    ActionPolicy,
    AdaptationPolicy,
    ControlPipeline,
    LatencyWindowSource,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord

#: Business-priority classes (0 = most critical, admitted longest).
BUSINESS_LEVELS = 4

#: Op name -> business priority.  Light point reads/writes are the
#: critical tiers; heavy bulk work is the first to be shed.  Ops not
#: listed default to :data:`DEFAULT_BUSINESS_PRIORITY`.
DEFAULT_OP_PRIORITIES: Dict[str, int] = {
    "point": 0,
    "point_select": 0,
    "select": 0,
    "search": 0,
    "get": 0,
    "write": 1,
    "row_update": 1,
    "update": 1,
    "insert": 1,
    "index": 1,
    "scan": 3,
    "fanout_scan": 3,
    "heavy_report": 3,
    "report_query": 3,
    "bulk_update": 3,
    "vacuum": 3,
    "backup": 3,
    "dump": 3,
    "long_transaction": 3,
    "slow_query": 3,
}

DEFAULT_BUSINESS_PRIORITY = 2


def user_level(client_id: str, user_levels: int) -> int:
    """Stable user partition (crc32, never Python ``hash``)."""
    base = client_id.split("|", 1)[0]
    return zlib.crc32(base.encode()) % user_levels


def compound_priority(
    op_name: str,
    client_id: str,
    user_levels: int,
    priorities: Optional[Dict[str, int]] = None,
) -> int:
    """DAGOR's compound priority: ``business * user_levels + user``."""
    table = DEFAULT_OP_PRIORITIES if priorities is None else priorities
    business = table.get(op_name, DEFAULT_BUSINESS_PRIORITY)
    return business * user_levels + user_level(client_id, user_levels)


class DagorLevelAdaptation(AdaptationPolicy):
    """Between-window admission-level adjustment (the slow half).

    Overloaded window: drop the level by ``shrink_step`` compound
    notches (shedding whole user slices of the least-critical admitted
    business class).  Healthy window: raise it one notch -- DAGOR's
    asymmetric probe back toward full admission.
    """

    name = "dagor-level"

    def __init__(self, controller: "Dagor") -> None:
        self.controller = controller

    def adapt(self, now: float, signals: Dict[str, Any]) -> None:
        c = self.controller
        tail = signals.get("tail_latency", float("nan"))
        overloaded = tail == tail and tail > c.slo_latency  # nan-safe
        c.last_violation = overloaded
        if overloaded:
            c.level = max(c.min_level, c.level - c.shrink_step)
        else:
            c.level = min(c.max_level, c.level + c.grow_step)


class DagorFeedbackAction(ActionPolicy):
    """Per-window action: publish the upstream feedback snapshot.

    Upstream callers (the mesh's epoch loop, a gateway) see the level
    as it stood at the last window edge -- the piggy-backed feedback of
    the paper -- not the live value mid-window.
    """

    name = "dagor-feedback"

    def __init__(self, controller: "Dagor") -> None:
        self.controller = controller

    def act(self, now: float, signals: Dict[str, Any]) -> None:
        c = self.controller
        c.admit_level = c.level
        c.feedback_history.append((now, c.level))
        c.window_rejections = 0
        signals["admit_level"] = c.level


class Dagor(BaseController):
    """Compound-priority admission with exported upstream feedback."""

    name = "dagor"

    def __init__(
        self,
        env: "Environment",
        slo_latency: float = 0.05,
        adjust_period: float = 0.2,
        user_levels: int = 8,
        shrink_step: Optional[int] = None,
        grow_step: int = 1,
        min_level: Optional[int] = None,
        priorities: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(env)
        self.slo_latency = slo_latency
        self.user_levels = user_levels
        self.priorities = (
            dict(DEFAULT_OP_PRIORITIES) if priorities is None
            else dict(priorities)
        )
        #: Full admission: the largest compound priority in use.
        self.max_level = BUSINESS_LEVELS * user_levels - 1
        #: Never shed the most-critical business class entirely.
        self.min_level = (
            user_levels - 1 if min_level is None else min_level
        )
        #: Half a business class per overloaded window by default.
        self.shrink_step = (
            max(1, user_levels // 2) if shrink_step is None else shrink_step
        )
        self.grow_step = grow_step
        #: Live admission level (moved by the adaptation stage).
        self.level = self.max_level
        #: Window-edge feedback snapshot exported upstream.
        self.admit_level = self.max_level
        self.rejections = 0
        self.window_rejections = 0
        self.last_violation = False
        self.feedback_history: List[Tuple[float, int]] = []
        self._window_source = LatencyWindowSource(
            env, horizon=1.0, percentile=99
        )
        self.pipeline = ControlPipeline(
            env,
            period=adjust_period,
            sources=[self._window_source],
            adaptation=DagorLevelAdaptation(self),
            action=DagorFeedbackAction(self),
        )

    @property
    def window(self):
        """The completion window (owned by the pipeline's source)."""
        return self._window_source.window

    def priority_of(self, op_name: str, client_id: str) -> int:
        return compound_priority(
            op_name, client_id, self.user_levels, self.priorities
        )

    def admit(self, op_name: str, client_id: str) -> bool:
        if self.priority_of(op_name, client_id) <= self.level:
            return True
        self.rejections += 1
        self.window_rejections += 1
        return False

    def observe_completion(self, record: "RequestRecord") -> None:
        self.pipeline.observe_completion(record)

    def start(self) -> None:
        self.pipeline.start()

    def telemetry_snapshot(self) -> Dict[str, Any]:
        snap = super().telemetry_snapshot()
        detector = self._window_source.telemetry_snapshot()
        detector["overloaded"] = 1.0 if self.last_violation else 0.0
        snap["detector"] = detector
        snap["admission"] = {
            "level": self.level,
            "admit_level": self.admit_level,
            "max_level": self.max_level,
            "min_level": self.min_level,
            "rejections": self.rejections,
            "user_levels": self.user_levels,
        }
        return snap
