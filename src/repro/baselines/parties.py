"""PARTIES baseline [Chen et al., ASPLOS '19].

PARTIES partitions resources among co-located services and incrementally
shifts allocations toward whoever violates QoS.  Integrated at the client
level (as the paper does in §5.2): each client gets a concurrency
allocation; a monitor shrinks the allocation of clients that consume the
most while the SLO is violated and slowly restores allocations when
things are healthy.

PARTIES never drops an executing request, so a culprit already holding a
resource keeps it; throttled clients simply queue at admission.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..core.controller import BaseController
from ..core.task import CancellableTask
from ..sim.metrics import SlidingWindow

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord


class Parties(BaseController):
    """Per-client incremental resource partitioning."""

    name = "parties"

    def __init__(
        self,
        env: "Environment",
        slo_latency: float = 0.05,
        adjust_period: float = 0.5,
        initial_limit: int = 64,
        min_limit: int = 1,
    ) -> None:
        super().__init__(env)
        self.slo_latency = slo_latency
        self.adjust_period = adjust_period
        self.initial_limit = initial_limit
        self.min_limit = min_limit
        #: client -> concurrency allocation.
        self.limits: Dict[str, int] = {}
        #: client -> currently executing requests.
        self.inflight: Dict[str, int] = {}
        #: client -> cumulative busy time (usage signal).
        self.busy_time: Dict[str, float] = {}
        self.window = SlidingWindow(horizon=1.0)
        self.rejections = 0

    # ------------------------------------------------------------------
    # Admission by per-client allocation
    # ------------------------------------------------------------------
    def _limit(self, client_id: str) -> int:
        return self.limits.setdefault(client_id, self.initial_limit)

    def admit(self, op_name: str, client_id: str) -> bool:
        limit = self._limit(client_id)
        if self.inflight.get(client_id, 0) >= limit:
            self.rejections += 1
            return False
        return True

    def create_cancel(self, *args, **kwargs) -> CancellableTask:
        task = super().create_cancel(*args, **kwargs)
        client = task.client_id
        self._limit(client)  # ensure the client has an allocation entry
        self.inflight[client] = self.inflight.get(client, 0) + 1
        return task

    def free_cancel(self, task: CancellableTask) -> None:
        if id(task) in self.tasks:
            client = task.client_id
            self.inflight[client] = max(0, self.inflight.get(client, 0) - 1)
            self.busy_time[client] = (
                self.busy_time.get(client, 0.0) + task.age
            )
        super().free_cancel(task)

    # ------------------------------------------------------------------
    # Monitoring and adjustment
    # ------------------------------------------------------------------
    def observe_completion(self, record: "RequestRecord") -> None:
        if record.completed:
            self.window.observe(record.finish_time, record.latency)

    def start(self) -> None:
        self.env.process(self._adjust_loop())

    def _usage_score(self, client_id: str) -> float:
        """Busy-time so far plus the live tasks' elapsed time."""
        score = self.busy_time.get(client_id, 0.0)
        for task in self.tasks.values():
            if task.alive and task.client_id == client_id:
                score += task.age
        return score

    def _adjust_loop(self):
        while True:
            yield self.env.timeout(self.adjust_period)
            now = self.env.now
            tail = self.window.latency_percentile(now, 99)
            violated = tail == tail and tail > self.slo_latency  # nan-safe
            if violated:
                # Shift resources away from the heaviest client.
                clients = [c for c in self.limits if self.inflight.get(c, 0)]
                if not clients:
                    continue
                heaviest = max(clients, key=self._usage_score)
                new_limit = max(self.min_limit, self._limit(heaviest) // 2)
                self.limits[heaviest] = new_limit
            else:
                # Healthy: slowly restore allocations.
                for client in list(self.limits):
                    if self.limits[client] < self.initial_limit:
                        self.limits[client] += 1
            # Usage scores decay each window so history does not dominate.
            for client in list(self.busy_time):
                self.busy_time[client] *= 0.5
