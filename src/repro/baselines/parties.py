"""PARTIES baseline [Chen et al., ASPLOS '19].

PARTIES partitions resources among co-located services and incrementally
shifts allocations toward whoever violates QoS.  Integrated at the client
level (as the paper does in §5.2): each client gets a concurrency
allocation; a monitor shrinks the allocation of clients that consume the
most while the SLO is violated and slowly restores allocations when
things are healthy.

PARTIES never drops an executing request, so a culprit already holding a
resource keeps it; throttled clients simply queue at admission.

Pipeline composition: the shared
:class:`~repro.core.pipeline.LatencyWindowSource` provides the window
tail and :class:`PartiesAllocationAction` performs the shrink / restore
/ decay step.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from ..core.controller import BaseController
from ..core.pipeline import ActionPolicy, ControlPipeline, LatencyWindowSource
from ..core.task import CancellableTask

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord


class PartiesAllocationAction(ActionPolicy):
    """Shift concurrency allocations away from the heaviest client."""

    name = "parties-allocation"

    def __init__(self, controller: "Parties") -> None:
        self.controller = controller

    def act(self, now: float, signals: Dict[str, Any]) -> None:
        c = self.controller
        tail = signals.get("tail_latency", float("nan"))
        violated = tail == tail and tail > c.slo_latency  # nan-safe
        c.last_violation = violated
        if violated:
            # Shift resources away from the heaviest client.
            clients = [cl for cl in c.limits if c.inflight.get(cl, 0)]
            if not clients:
                # Violation with nobody executing: nothing to shrink,
                # and (historically) no decay either this window.
                return
            heaviest = max(clients, key=c._usage_score)
            new_limit = max(c.min_limit, c._limit(heaviest) // 2)
            c.limits[heaviest] = new_limit
        else:
            # Healthy: slowly restore allocations.
            for client in list(c.limits):
                if c.limits[client] < c.initial_limit:
                    c.limits[client] += 1
        # Usage scores decay each window so history does not dominate.
        for client in list(c.busy_time):
            c.busy_time[client] *= 0.5


class Parties(BaseController):
    """Per-client incremental resource partitioning."""

    name = "parties"

    def __init__(
        self,
        env: "Environment",
        slo_latency: float = 0.05,
        adjust_period: float = 0.5,
        initial_limit: int = 64,
        min_limit: int = 1,
    ) -> None:
        super().__init__(env)
        self.slo_latency = slo_latency
        self.adjust_period = adjust_period
        self.initial_limit = initial_limit
        self.min_limit = min_limit
        #: client -> concurrency allocation.
        self.limits: Dict[str, int] = {}
        #: client -> currently executing requests.
        self.inflight: Dict[str, int] = {}
        #: client -> cumulative busy time (usage signal).
        self.busy_time: Dict[str, float] = {}
        self.rejections = 0
        #: Whether the last adjustment window violated the SLO.
        self.last_violation = False
        self._window_source = LatencyWindowSource(
            env, horizon=1.0, percentile=99
        )
        self.pipeline = ControlPipeline(
            env,
            period=adjust_period,
            sources=[self._window_source],
            action=PartiesAllocationAction(self),
        )

    @property
    def window(self):
        """The completion window (owned by the pipeline's signal source)."""
        return self._window_source.window

    # ------------------------------------------------------------------
    # Admission by per-client allocation
    # ------------------------------------------------------------------
    def _limit(self, client_id: str) -> int:
        return self.limits.setdefault(client_id, self.initial_limit)

    def admit(self, op_name: str, client_id: str) -> bool:
        limit = self._limit(client_id)
        if self.inflight.get(client_id, 0) >= limit:
            self.rejections += 1
            return False
        return True

    def create_cancel(self, *args, **kwargs) -> CancellableTask:
        task = super().create_cancel(*args, **kwargs)
        client = task.client_id
        self._limit(client)  # ensure the client has an allocation entry
        self.inflight[client] = self.inflight.get(client, 0) + 1
        return task

    def free_cancel(self, task: CancellableTask) -> None:
        if id(task) in self.tasks:
            client = task.client_id
            self.inflight[client] = max(0, self.inflight.get(client, 0) - 1)
            self.busy_time[client] = (
                self.busy_time.get(client, 0.0) + task.age
            )
        super().free_cancel(task)

    # ------------------------------------------------------------------
    # Monitoring and adjustment
    # ------------------------------------------------------------------
    def observe_completion(self, record: "RequestRecord") -> None:
        self.pipeline.observe_completion(record)

    def start(self) -> None:
        self.pipeline.start()

    def _usage_score(self, client_id: str) -> float:
        """Busy-time so far plus the live tasks' elapsed time."""
        score = self.busy_time.get(client_id, 0.0)
        for task in self.tasks.values():
            if task.alive and task.client_id == client_id:
                score += task.age
        return score

    def telemetry_snapshot(self) -> Dict[str, Any]:
        snap = super().telemetry_snapshot()
        detector = self._window_source.telemetry_snapshot()
        detector["overloaded"] = 1.0 if self.last_violation else 0.0
        snap["detector"] = detector
        snap["admission"] = {
            "clients": len(self.limits),
            "min_limit": min(self.limits.values()) if self.limits else None,
            "rejections": self.rejections,
        }
        return snap
