"""pBox baseline [Hu et al., SOSP '23].

pBox pushes performance-isolation boundaries into the application: it
traces per-request resource usage, detects interference, and *penalizes*
(throttles) the offending request -- but it never drops a running
request.  §2.2's critique: a throttled culprit still holds what it
already acquired, so severe overload caused by held resources is not
fully recovered.

Pipeline composition: a :class:`UsageWindowSource` owns the usage-ledger
window roll and :class:`PenaltyAction` performs the per-window
interference check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from ..core.config import AtroposConfig
from ..core.controller import BaseController
from ..core.estimator import Estimator
from ..core.pipeline import ActionPolicy, ControlPipeline, SignalSource
from ..core.runtime import RuntimeManager
from ..core.task import CancellableTask

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.metrics import RequestRecord


class UsageWindowSource(SignalSource):
    """Bookkeeping source: rolls the runtime usage window each tick."""

    name = "usage-window"

    def __init__(self, runtime: RuntimeManager) -> None:
        self.runtime = runtime

    def sample(self, now: float, signals: Dict[str, Any]) -> None:
        """No per-window signal: pBox's estimator reads the ledger
        directly inside the action stage."""

    def roll(self, now: float) -> None:
        self.runtime.roll_window()


class PenaltyAction(ActionPolicy):
    """Penalize the top consumer of each overloaded resource."""

    name = "pbox-penalty"

    def __init__(self, controller: "PBox") -> None:
        self.controller = controller

    def act(self, now: float, signals: Dict[str, Any]) -> None:
        self.controller._maybe_penalize()


class PBox(BaseController):
    """Interference detection + penalty throttling (no drops)."""

    name = "pbox"

    def __init__(
        self,
        env: "Environment",
        slo_latency: float = 0.05,
        detection_period: float = 0.1,
        penalty_delay: float = 0.05,
        penalty_duration: float = 1.0,
        contention_threshold: float = 0.25,
    ) -> None:
        """
        Args:
            penalty_delay: delay injected at each checkpoint of a
                penalized task.
            penalty_duration: how long a penalty sticks before expiring.
        """
        super().__init__(env)
        self.config = AtroposConfig(
            slo_latency=slo_latency,
            detection_period=detection_period,
            contention_threshold=contention_threshold,
        )
        # pBox traces the same per-task usage signals (its "observation
        # points"); we reuse the runtime/estimator machinery.
        self.runtime = RuntimeManager(env, self.config)
        self.estimator = Estimator(env, self.runtime, self.config)
        self.penalty_delay = penalty_delay
        self.penalty_duration = penalty_duration
        #: task-id -> penalty expiry time.
        self._penalized: Dict[int, float] = {}
        self.penalties_issued = 0
        self.pipeline = ControlPipeline(
            env,
            period=detection_period,
            sources=[UsageWindowSource(self.runtime)],
            action=PenaltyAction(self),
        )

    # ------------------------------------------------------------------
    # Tracing (delegated to the runtime manager)
    # ------------------------------------------------------------------
    def create_cancel(self, *args, **kwargs) -> CancellableTask:
        task = super().create_cancel(*args, **kwargs)
        self.runtime.task_started(task)
        return task

    def free_cancel(self, task: CancellableTask) -> None:
        if id(task) in self.tasks:
            self.runtime.task_finished(task)
        self._penalized.pop(id(task), None)
        super().free_cancel(task)

    def get_resource(self, task, resource, amount: float = 1.0) -> None:
        self.runtime.record_get(task, resource, amount)

    def free_resource(self, task, resource, amount: float = 1.0) -> None:
        self.runtime.record_free(task, resource, amount)

    def slow_by_resource(
        self, task, resource, delay: float, events: float = 1.0
    ) -> None:
        self.runtime.record_slow_by(task, resource, delay, events)

    def begin_wait(self, task, resource) -> None:
        self.runtime.record_wait_start(task, resource)

    def end_wait(self, task, resource) -> float:
        return self.runtime.record_wait_end(task, resource)

    # ------------------------------------------------------------------
    # Penalty mechanism
    # ------------------------------------------------------------------
    def throttle_delay(self, task: CancellableTask) -> float:
        expiry = self._penalized.get(id(task))
        if expiry is None:
            return 0.0
        if self.env.now >= expiry:
            del self._penalized[id(task)]
            return 0.0
        return self.penalty_delay

    def start(self) -> None:
        self.pipeline.start()

    def _maybe_penalize(self) -> None:
        assessment = self.estimator.assess(
            resources=list(self.resources.values()),
            tasks=self.live_tasks(),
            use_future_gain=False,  # pBox reasons about observed usage
        )
        overloaded = assessment.overloaded_resources
        if not overloaded:
            return
        # Penalize the top consumer of each overloaded resource.
        for report in overloaded:
            best: Optional[CancellableTask] = None
            best_usage = 0.0
            for task_report in assessment.tasks:
                usage = task_report.gain(report.resource)
                if usage > best_usage and task_report.task.alive:
                    best = task_report.task
                    best_usage = usage
            if best is not None:
                if id(best) not in self._penalized:
                    self.penalties_issued += 1
                self._penalized[id(best)] = (
                    self.env.now + self.penalty_duration
                )

    def telemetry_snapshot(self) -> Dict[str, Any]:
        snap = super().telemetry_snapshot()
        snap["penalties"] = {
            "issued": self.penalties_issued,
            "active": len(self._penalized),
        }
        return snap
