"""DARC baseline [Demoulin et al., SOSP '21 -- Perséphone].

DARC profiles request service times by type and *dedicates* cores/workers
to short request classes so they are never blocked behind long requests.
On our substrate this maps to worker-pool reservations for the "light"
classes.  DARC helps thread-pool monopolization cases, but cannot address
held locks, buffer-pool thrash, or GC pressure -- no amount of worker
partitioning releases a held resource.

Pipeline composition: DARC is the degenerate pipeline -- no periodic
loop at all (``period=None``), just a bind-time
:class:`WorkerReservationAction`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Dict, Tuple

from ..core.controller import BaseController
from ..core.pipeline import ActionPolicy, ControlPipeline
from ..sim.resources import ThreadPool

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment

#: Request classes DARC's profiler classifies as short.
LIGHT_CLASSES: Tuple[str, ...] = ("light", "static", "io")


class WorkerReservationAction(ActionPolicy):
    """Bind-time action: reserve worker-pool slots for short classes."""

    name = "darc-reservation"

    def __init__(self, controller: "DARC") -> None:
        self.controller = controller

    def bind(self, app) -> None:
        c = self.controller
        for attr in vars(app).values():
            if isinstance(attr, ThreadPool):
                reserve = max(
                    1, math.floor(attr.workers * c.reserved_fraction)
                )
                # Never reserve every worker: heavy requests must be able
                # to run, else the system deadlocks by policy.
                reserve = min(reserve, attr.workers - 1)
                if reserve <= 0:
                    continue
                # One shared reservation for all profiled-short classes.
                attr.reserve(c.light_classes, reserve)
                c.reserved_pools.append(attr)

    def act(self, now: float, signals: Dict[str, Any]) -> None:
        """Never called: the pipeline has no period."""


class DARC(BaseController):
    """Request-type-aware worker reservation."""

    name = "darc"

    def __init__(
        self,
        env: "Environment",
        reserved_fraction: float = 0.5,
        light_classes: Tuple[str, ...] = LIGHT_CLASSES,
    ) -> None:
        if not 0.0 < reserved_fraction < 1.0:
            raise ValueError("reserved_fraction must be in (0, 1)")
        super().__init__(env)
        self.reserved_fraction = reserved_fraction
        self.light_classes = light_classes
        self.reserved_pools = []
        self.pipeline = ControlPipeline(
            env,
            period=None,
            action=WorkerReservationAction(self),
        )

    def bind(self, app) -> None:
        """Reserve a share of every worker pool for short classes.

        The profiling step of DARC (measuring per-type service times)
        is encoded in the class names the application already submits
        with: "light"/"static" classes are the profiled-short ones.
        """
        self.pipeline.bind(app)

    def start(self) -> None:
        self.pipeline.start()  # no-op: period is None

    def telemetry_snapshot(self) -> Dict[str, Any]:
        snap = super().telemetry_snapshot()
        snap["reservations"] = {
            "pools": len(self.reserved_pools),
            "reserved_fraction": self.reserved_fraction,
        }
        return snap
