"""Protego baseline [Cho et al., NSDI '23].

Protego lets requests execute, monitors each request's *blocking delay*
(primarily lock wait), and drops requests whose accumulated wait
approaches an SLO violation.  It drops the *victims* of contention, never
the culprit holding the resource -- the limitation §2.2 demonstrates:
tail latency is bounded, but throughput craters and the drop rate is
high, and cases whose bottleneck is a non-waitable resource (memory
thrash, GC) are not helped at all.

Pipeline composition: :class:`BlockingDelaySource` scans the open waits
and publishes the over-budget victims as a signal;
:class:`VictimDropAction` delivers the drops.  The split mirrors the
other controllers: observation produces evidence, the action consumes
it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Tuple

from ..core.controller import BaseController
from ..core.pipeline import ActionPolicy, ControlPipeline, SignalSource
from ..core.task import CancellableTask
from ..core.types import DropSignal, ResourceHandle, ResourceType, TaskKind

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


class BlockingDelaySource(SignalSource):
    """Scans blocked requests for accumulated wait over budget.

    Publishes ``blocked_victims``: the ``(task, resource)`` pairs whose
    blocking delay exceeds the drop threshold, in wait-start order.
    """

    name = "blocking-delay"

    def __init__(self, controller: "Protego") -> None:
        self.controller = controller

    def sample(self, now: float, signals: Dict[str, Any]) -> None:
        c = self.controller
        victims = []
        for (task_id, resource), start in list(c._open_waits.items()):
            task = c.tasks.get(task_id)
            if task is None or not task.alive:
                continue
            if task.kind is TaskKind.BACKGROUND:
                continue
            if c.blocking_delay(task) > c.drop_threshold:
                victims.append((task, resource))
        signals["blocked_victims"] = victims

    def telemetry_snapshot(self) -> Dict[str, Any]:
        return {"open_waits": len(self.controller._open_waits)}


class VictimDropAction(ActionPolicy):
    """Aborts the over-budget waiting victims found this window."""

    name = "protego-drop"

    def __init__(self, controller: "Protego") -> None:
        self.controller = controller

    def act(self, now: float, signals: Dict[str, Any]) -> None:
        c = self.controller
        for task, resource in signals.get("blocked_victims", ()):
            if task.process is not None and task.process.is_alive:
                c.drops_issued += 1
                task.process.interrupt(
                    DropSignal(
                        reason="lock-wait-over-budget",
                        resource=resource,
                        decided_at=now,
                    )
                )


class Protego(BaseController):
    """Victim-dropping overload control keyed on blocking delay."""

    name = "protego"

    def __init__(
        self,
        env: "Environment",
        slo_latency: float = 0.05,
        drop_fraction: float = 0.8,
        monitor_period: float = 0.02,
    ) -> None:
        """
        Args:
            slo_latency: the request latency SLO.
            drop_fraction: drop a request once its accumulated blocking
                delay exceeds ``drop_fraction * slo_latency``.
            monitor_period: how often waiting requests are scanned.
        """
        super().__init__(env)
        self.slo_latency = slo_latency
        self.drop_fraction = drop_fraction
        self.monitor_period = monitor_period
        #: (task-id) -> accumulated closed blocking delay.
        self._closed_wait: Dict[int, float] = {}
        #: (task-id, resource) -> open wait start time.
        self._open_waits: Dict[Tuple[int, ResourceHandle], float] = {}
        self.drops_issued = 0
        self.pipeline = ControlPipeline(
            env,
            period=monitor_period,
            sources=[BlockingDelaySource(self)],
            action=VictimDropAction(self),
        )

    # ------------------------------------------------------------------
    # Wait tracking
    # ------------------------------------------------------------------
    def _waitable(self, resource: ResourceHandle) -> bool:
        """Protego monitors blocking delays (locks, queues, devices) --
        not memory-style resources, whose cost shows up as slow
        execution rather than waiting."""
        return resource.rtype is not ResourceType.MEMORY

    def begin_wait(
        self, task: CancellableTask, resource: ResourceHandle
    ) -> None:
        if self._waitable(resource):
            self._open_waits[(id(task), resource)] = self.env.now

    def slow_by_resource(
        self,
        task: CancellableTask,
        resource: ResourceHandle,
        delay: float,
        events: float = 1.0,
    ) -> None:
        # Post-hoc blocking delays (e.g. CPU run-queue waits reported
        # after a burst) also count toward the request's budget.
        if self._waitable(resource):
            self._closed_wait[id(task)] = (
                self._closed_wait.get(id(task), 0.0) + delay
            )

    def end_wait(
        self, task: CancellableTask, resource: ResourceHandle
    ) -> float:
        start = self._open_waits.pop((id(task), resource), None)
        if start is None:
            return 0.0
        duration = self.env.now - start
        self._closed_wait[id(task)] = (
            self._closed_wait.get(id(task), 0.0) + duration
        )
        return duration

    def blocking_delay(self, task: CancellableTask) -> float:
        """Total blocking delay so far (closed + in-progress waits)."""
        total = self._closed_wait.get(id(task), 0.0)
        now = self.env.now
        for (task_id, _res), start in self._open_waits.items():
            if task_id == id(task):
                total += now - start
        return total

    def free_cancel(self, task: CancellableTask) -> None:
        self._closed_wait.pop(id(task), None)
        stale = [k for k in self._open_waits if k[0] == id(task)]
        for k in stale:
            del self._open_waits[k]
        super().free_cancel(task)

    # ------------------------------------------------------------------
    # Dropping
    # ------------------------------------------------------------------
    @property
    def drop_threshold(self) -> float:
        return self.drop_fraction * self.slo_latency

    def should_drop(self, task: CancellableTask) -> bool:
        """Checkpoint hook: drop executing victims over budget."""
        if task.kind is TaskKind.BACKGROUND:
            return False
        return self.blocking_delay(task) > self.drop_threshold

    def start(self) -> None:
        self.pipeline.start()

    def telemetry_snapshot(self) -> Dict[str, Any]:
        snap = super().telemetry_snapshot()
        snap["drops"] = {
            "issued": self.drops_issued,
            "open_waits": len(self._open_waits),
        }
        return snap
