"""Baseline overload-control / isolation systems the paper compares against.

All baselines implement the shared :class:`~repro.core.controller.
BaseController` interface so they run on the same instrumented
applications (§5.1's integration methodology):

* :class:`Protego` -- lock-contention-aware victim dropping (NSDI '23).
* :class:`PBox` -- per-request performance isolation via penalties
  (SOSP '23).
* :class:`DARC` -- request-type-aware worker reservation (SOSP '21).
* :class:`Parties` -- per-client incremental resource partitioning
  (ASPLOS '19).
* :class:`Seda` -- classic AIMD admission control (USITS '03).
* :class:`Breakwater` -- credit-based admission on queueing delay
  (OSDI '20).
* :class:`Dagor` -- WeChat's priority/user-level admission with
  upstream feedback (SoCC '18).
* :class:`Autothrottle` -- bi-level latency-target throttling
  (per-service fast loop + global tower, NSDI '24).
"""

from .autothrottle import Autothrottle, AutothrottleTower
from .breakwater import Breakwater
from .dagor import Dagor
from .darc import DARC
from .parties import Parties
from .pbox import PBox
from .protego import Protego
from .seda import Seda

__all__ = [
    "Autothrottle",
    "AutothrottleTower",
    "Breakwater",
    "DARC",
    "Dagor",
    "PBox",
    "Parties",
    "Protego",
    "Seda",
]


def controller_factory(
    name: str, slo_latency: float = 0.05, atropos_overrides: dict = None
):
    """Build a controller factory by system name.

    Recognized names: "atropos", "protego", "pbox", "darc", "parties",
    "seda", "breakwater", "dagor", "autothrottle", "overload"/"none"
    (uncontrolled).  ``atropos_overrides`` are extra
    :class:`AtroposConfig` fields (used by cases that need e.g. the
    thread-level cancellation flag).
    """
    from ..core.atropos import Atropos
    from ..core.config import AtroposConfig
    from ..core.controller import NullController

    name = name.lower()

    def build(env):
        if name == "atropos":
            return Atropos(
                env,
                AtroposConfig(
                    slo_latency=slo_latency, **(atropos_overrides or {})
                ),
            )
        if name == "protego":
            return Protego(env, slo_latency=slo_latency)
        if name == "pbox":
            return PBox(env, slo_latency=slo_latency)
        if name == "darc":
            return DARC(env)
        if name == "parties":
            return Parties(env, slo_latency=slo_latency)
        if name == "seda":
            return Seda(env, slo_latency=slo_latency)
        if name == "breakwater":
            return Breakwater(env, target_delay=slo_latency)
        if name == "dagor":
            return Dagor(env, slo_latency=slo_latency)
        if name == "autothrottle":
            return Autothrottle(env, slo_latency=slo_latency)
        if name in ("overload", "none"):
            return NullController(env)
        raise ValueError(f"unknown controller {name!r}")

    return build
