"""Microservice-mesh execution: DAG requests over epoch-synced services.

Runs a :class:`~repro.workloads.dag.DagSpec`: every service is a full
app-node simulation (:class:`ServiceNode`, the same stack as a fleet
:class:`~repro.cluster.node.ClusterNode`), and the mesh drives them
with the cluster tier's epoch discipline -- RPC shards produced by a
parent stage in epoch ``k`` dispatch at the start of epoch ``k + 1``,
per-edge FIFO queues enforce the edge concurrency limits, and an
AND-join completes a stage only when all shards of all incoming edges
finished.  Cross-service coupling therefore crosses process boundaries
only as picklable values (shard tuples, :class:`ServiceStatus`,
directive tuples), which is what makes serial and sharded mesh runs
byte-identical.

A request's **critical-path latency** is the DAG-longest sum of its
per-stage shard latencies (queueing + service time inside each node).
The epoch-boundary RPC hop is a sync artifact of the simulation, not a
modeled cost, so SLO accounting uses the critical path, not wall time.

Controller modes (every service mounts the same controller):

* ``none`` -- uncontrolled.
* ``atropos`` -- per-service cancellation pipelines (targeted cancel).
* ``dagor`` -- per-service admission levels; the mesh additionally
  sheds doomed RPCs *upstream* using each service's last exported
  :attr:`~repro.baselines.dagor.Dagor.admit_level` (epoch-old, as
  piggy-backed feedback would be).
* ``autothrottle`` -- per-service fast-loop throttles plus the global
  :class:`~repro.baselines.autothrottle.AutothrottleTower` running in
  the mesh's slow-loop seat; retuned targets are delivered to services
  as epoch-boundary directives.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..apps.base import Operation
from ..apps.mysql import MySQL, MySQLConfig
from ..apps.postgres import PostgreSQL, PostgresConfig
from ..baselines.autothrottle import Autothrottle, AutothrottleTower
from ..baselines.dagor import Dagor, compound_priority
from ..core.atropos import Atropos
from ..core.config import AtroposConfig
from ..core.controller import NullController
from ..sim.environment import Environment
from ..sim.metrics import MetricsCollector, Summary, percentile
from ..sim.rng import Rng
from ..telemetry.health import HealthMonitor, default_health_rules
from ..workloads.dag import DagSpec, ServiceSpec, build_arrivals
from ..workloads.driver import Driver

#: Shard tuple crossing the mesh -> node boundary (picklable):
#: ``(time, key, op, params, client_id)``.
Shard = tuple

#: Feedback level meaning "shed nothing" before the first window.
OPEN_LEVEL = 10 ** 6


@dataclass
class ServiceStatus:
    """One service's epoch-end snapshot (crosses shard-process pipes)."""

    service: str
    backend: str
    epoch: int
    t: float
    outstanding: int = 0
    offered_window: int = 0
    #: Terminal shards this window: ``(key, status, latency, finish)``.
    shard_results: List[Tuple[str, str, float, float]] = field(
        default_factory=list
    )
    #: Window p99 over completed shard latencies.
    p99_window: float = float("nan")
    #: DAGOR upstream feedback (:data:`OPEN_LEVEL` for other modes).
    admit_level: int = OPEN_LEVEL
    #: Autothrottle fast-loop state (nominal workers for other modes).
    throttle_limit: int = 0
    target: float = 0.0


class ServiceNode:
    """One mesh service, advanced epoch by epoch."""

    def __init__(
        self,
        spec: DagSpec,
        service: ServiceSpec,
        index: int,
        controller: str,
    ) -> None:
        self.spec = spec
        self.service = service
        self.index = index
        self.name = service.name
        self.backend = service.backend
        self.mode = controller
        self.env = Environment()
        rng = Rng(spec.seed).fork(f"dag:{self.name}")
        self.controller = self._make_controller(controller, spec)
        if service.backend == "mysql":
            self.app = MySQL(
                self.env,
                self.controller,
                rng,
                MySQLConfig(
                    tables=spec.tables,
                    pages_per_light_op=spec.mysql_pages_per_light_op,
                    miss_penalty=spec.mysql_miss_penalty,
                ),
            )
        else:
            self.app = PostgreSQL(
                self.env,
                self.controller,
                rng,
                PostgresConfig(tables=spec.tables),
            )
        self._register_dag_ops()
        self.controller.bind(self.app)
        if controller != "none":
            self.controller.start()
        self.collector = MetricsCollector()
        self.driver = Driver(
            self.env, self.app, self.controller, self.collector
        )
        self._record_idx = 0
        self._offered_last = 0

    def _make_controller(self, controller: str, spec: DagSpec):
        if controller == "atropos":
            return Atropos(
                self.env,
                AtroposConfig(
                    slo_latency=spec.slo_latency,
                    cancellation_enabled=True,
                ),
            )
        if controller == "dagor":
            return Dagor(
                self.env,
                slo_latency=spec.slo_latency,
                user_levels=spec.dagor_user_levels,
            )
        if controller == "autothrottle":
            return Autothrottle(self.env, slo_latency=spec.slo_latency)
        return NullController(self.env)

    def _register_dag_ops(self) -> None:
        app = self.app
        spec = self.spec
        if self.backend == "mysql":

            def point(task, table=0):
                yield from app.point_select(task, table=table)

            def write(task, table=0):
                yield from app.row_update(task, table=table)

            def scan(task, rows=0.0):
                yield from app.scan(task, table=0, rows=rows)

        else:

            def point(task, table=0):
                yield from app.select(task, table=table)

            def write(task, table=0):
                yield from app.update(task, table=table)

            def scan(task, rows=0.0):
                yield from app.vacuum(
                    task, total_bytes=rows * spec.pg_bytes_per_row
                )

        app.register_handler("point", point)
        app.register_handler("write", write)
        app.register_handler("scan", scan)

    # ------------------------------------------------------------------
    # Epoch advance
    # ------------------------------------------------------------------
    def advance(
        self,
        epoch: int,
        t_end: float,
        shards: List[Shard],
        directives: List[Tuple[str, float]],
    ) -> ServiceStatus:
        """Run this service's environment to ``t_end`` and snapshot it."""
        for kind, value in directives:
            if kind == "target" and hasattr(self.controller, "set_target"):
                self.controller.set_target(value)
        for t, key, op, params, client in shards:
            self.driver.run_arrivals(
                [(t, self._make_op(op, params))],
                client_id=f"{client}|{key}",
            )
        self.env.run(until=t_end)
        return self._status(epoch, t_end)

    def _make_op(self, op: str, params: Dict[str, Any]):
        def factory(op=op, params=params):
            return Operation(op, dict(params))

        return factory

    def _status(self, epoch: int, t_end: float) -> ServiceStatus:
        records = self.collector.records
        window = records[self._record_idx:]
        self._record_idx = len(records)
        offered_total = self.collector.offered
        offered_window = offered_total - self._offered_last
        self._offered_last = offered_total
        status = ServiceStatus(
            service=self.name,
            backend=self.backend,
            epoch=epoch,
            t=t_end,
            outstanding=self.driver.inflight,
            offered_window=offered_window,
        )
        completed_latencies: List[float] = []
        for record in window:
            key = record.client_id.rsplit("|", 1)[1]
            finish = (
                record.finish_time if record.finish_time is not None
                else t_end
            )
            latency = max(0.0, finish - record.arrival_time)
            status.shard_results.append(
                (key, record.status.value, latency, finish)
            )
            if record.completed:
                completed_latencies.append(latency)
        if completed_latencies:
            status.p99_window = percentile(completed_latencies, 99)
        controller = self.controller
        if isinstance(controller, Dagor):
            status.admit_level = controller.admit_level
        if isinstance(controller, Autothrottle):
            status.throttle_limit = controller.limit
            status.target = controller.target
        return status

    # ------------------------------------------------------------------
    # Final report
    # ------------------------------------------------------------------
    def finish(self) -> Dict[str, Any]:
        """Per-service end-of-run report (picklable)."""
        spec = self.spec
        effective = spec.duration + spec.drain - spec.warmup
        summary = Summary.from_collector(
            self.collector.trimmed(spec.warmup), effective
        )
        controller = self.controller
        return {
            "service": self.name,
            "backend": self.backend,
            "throughput": summary.throughput,
            "p99_latency": summary.p99_latency,
            "completed": summary.completed,
            "cancelled": summary.cancelled,
            "dropped": summary.dropped,
            "cancels": int(controller.cancels_issued),
            "rejections": int(getattr(controller, "rejections", 0)),
            "resize_moves": int(getattr(controller, "resize_moves", 0)),
            "target_moves": int(getattr(controller, "target_moves", 0)),
        }


@dataclass
class DagResult:
    """Everything one mesh run produces (JSON-able, deterministic)."""

    controller: str
    n_services: int
    n_edges: int
    duration: float
    epochs: int = 0
    #: Victim-class critical-path p99 (post-warmup arrivals), seconds.
    victim_p99: float = float("nan")
    victim_p50: float = float("nan")
    victim_mean: float = float("nan")
    #: Victim completions whose critical path met the SLO, per second.
    goodput: float = 0.0
    #: Per-class outcome counts.
    classes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    shed_upstream: int = 0
    cancelled_shards: int = 0
    tower_moves: List[Dict[str, Any]] = field(default_factory=list)
    health_events: List[Dict[str, Any]] = field(default_factory=list)
    service_reports: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        out = dict(self.__dict__)
        for key in ("victim_p99", "victim_p50", "victim_mean"):
            value = getattr(self, key)
            out[key] = None if value != value else round(value, 9)
        out["goodput"] = round(self.goodput, 9)
        out["classes"] = {
            name: dict(sorted(counts.items()))
            for name, counts in sorted(self.classes.items())
        }
        for report in out["service_reports"]:
            for key in ("throughput", "p99_latency"):
                report[key] = round(report[key], 9)
        return out

    def digest(self) -> str:
        """Canonical content hash (parity / determinism tests)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def render(self) -> str:
        """Operator-facing text report."""
        p99 = (
            "n/a" if self.victim_p99 != self.victim_p99
            else f"{self.victim_p99 * 1000:.1f}ms"
        )
        lines = [
            f"mesh: {self.n_services} services / {self.n_edges} edges, "
            f"controller={self.controller}, {self.epochs} epochs",
            f"victim p99 {p99} | goodput {self.goodput:.1f}/s | "
            f"upstream sheds {self.shed_upstream} | "
            f"cancelled shards {self.cancelled_shards}",
            "",
            f"{'service':<10} {'backend':<9} {'tput':>7} {'p99':>9} "
            f"{'cancel':>7} {'reject':>7} {'resize':>7}",
        ]
        for report in self.service_reports:
            p99_s = report["p99_latency"]
            p99_text = "n/a" if p99_s != p99_s else f"{p99_s * 1000:.1f}ms"
            lines.append(
                f"{report['service']:<10} {report['backend']:<9} "
                f"{report['throughput']:>7.1f} {p99_text:>9} "
                f"{report['cancels']:>7} {report['rejections']:>7} "
                f"{report['resize_moves']:>7}"
            )
        return "\n".join(lines)


class _RequestState:
    """Parent-side bookkeeping for one in-flight DAG request."""

    __slots__ = (
        "rid", "cls_name", "arrival", "client", "victim", "failed",
        "done", "parents_left", "shards_left", "stage_done",
        "stage_latency", "stage_finish",
    )

    def __init__(self, rid, cls_name, arrival, client, victim, spec):
        self.rid = rid
        self.cls_name = cls_name
        self.arrival = arrival
        self.client = client
        self.victim = victim
        self.failed: Optional[str] = None
        self.done = False
        self.parents_left = {}
        self.shards_left = {}
        self.stage_done = {}
        self.stage_latency = {}
        self.stage_finish = {}
        for service in (s.name for s in spec.services):
            incoming = spec.parents_of(service)
            self.parents_left[service] = len(incoming)
            self.shards_left[service] = (
                1 if service == spec.entry
                else sum(spec.edges[e].fanout for e in incoming)
            )
            self.stage_done[service] = False

    def critical_path(self, spec: DagSpec) -> float:
        cp: Dict[str, float] = {}
        for service in spec.topo_order():
            upstream = max(
                (cp[spec.edges[e].source] for e in spec.parents_of(service)),
                default=0.0,
            )
            cp[service] = upstream + self.stage_latency.get(service, 0.0)
        return max(cp.values())


class _MeshDriver:
    """The epoch loop shared by serial and sharded execution."""

    def __init__(self, spec: DagSpec, controller: str) -> None:
        self.spec = spec
        self.controller = controller
        self.arrivals = build_arrivals(spec)
        self.requests: Dict[int, _RequestState] = {}
        self.classes = {c.name: c for c in spec.classes}
        self.victim_classes = {
            c.name for c in spec.classes
            if c.name not in spec.expected_culprits
        }
        culprit_ops = {
            op
            for c in spec.classes if c.name in spec.expected_culprits
            for _, op in c.ops
        }
        victim_ops = {
            op for c in spec.classes if c.name in self.victim_classes
            for _, op in c.ops
        }
        self.monitor = HealthMonitor(
            default_health_rules(
                slo=spec.slo_latency,
                expected_culprits=tuple(sorted(culprit_ops - victim_ops)),
            )
        )
        self.tower: Optional[AutothrottleTower] = (
            AutothrottleTower(
                [s.name for s in spec.services], spec.slo_latency
            )
            if controller == "autothrottle" else None
        )
        self.tower_epochs = max(1, round(spec.tower_period / spec.epoch))
        self.edge_queues: List[List[Tuple[int, int]]] = [
            [] for _ in spec.edges
        ]
        self.edge_out: List[int] = [0] * len(spec.edges)
        self.admit_levels: Dict[str, int] = {
            s.name: OPEN_LEVEL for s in spec.services
        }
        self.counts: Dict[str, Dict[str, int]] = {
            c.name: {"offered": 0, "completed": 0, "shed_upstream": 0,
                     "dropped": 0, "cancelled": 0, "timed_out": 0,
                     "unfinished": 0}
            for c in spec.classes
        }
        self.shed_upstream = 0
        self.cancelled_shards = 0
        #: (arrival, cp_latency) of completed victim requests.
        self.victim_done: List[Tuple[float, float]] = []
        self._window_victim_cp: List[float] = []
        self._arrival_idx = 0

    # -- per-epoch plan ------------------------------------------------
    def plan(self, epoch: int, t_end: float) -> Dict[int, List[Shard]]:
        spec = self.spec
        t_start = spec.epoch_end(epoch - 1) if epoch > 0 else 0.0
        submissions: Dict[int, List[Shard]] = {
            i: [] for i in range(len(spec.services))
        }
        for e, edge in enumerate(spec.edges):
            queue = self.edge_queues[e]
            taken = 0
            for rid, k in queue:
                req = self.requests[rid]
                if req.failed is not None:
                    taken += 1
                    continue
                if self.edge_out[e] >= edge.concurrency:
                    break
                cls = self.classes[req.cls_name]
                op = cls.op_for(edge.target)
                if self.controller == "dagor":
                    priority = compound_priority(
                        op, req.client, spec.dagor_user_levels
                    )
                    if priority > self.admit_levels[edge.target]:
                        req.failed = "shed-upstream"
                        self.counts[req.cls_name]["shed_upstream"] += 1
                        self.shed_upstream += 1
                        taken += 1
                        continue
                self.edge_out[e] += 1
                submissions[spec.service_index(edge.target)].append((
                    t_start,
                    f"{rid}:{e}:{k}",
                    op,
                    self._params(op, cls, rid, k),
                    req.client,
                ))
                taken += 1
            del queue[:taken]
        entry_idx = spec.service_index(spec.entry)
        entry_cls_ops = {c.name: c.op_for(spec.entry) for c in spec.classes}
        while self._arrival_idx < len(self.arrivals):
            t, rid, cls_name, client = self.arrivals[self._arrival_idx]
            if t >= t_end:
                break
            self._arrival_idx += 1
            req = _RequestState(
                rid, cls_name, t, client,
                cls_name in self.victim_classes, spec,
            )
            self.requests[rid] = req
            self.counts[cls_name]["offered"] += 1
            op = entry_cls_ops[cls_name]
            submissions[entry_idx].append((
                t,
                f"{rid}:entry:0",
                op,
                self._params(op, self.classes[cls_name], rid, 0),
                client,
            ))
        return submissions

    def _params(self, op, cls, rid: int, k: int) -> Dict[str, Any]:
        if op == "scan":
            return {"rows": cls.rows}
        return {"table": (rid + k) % self.spec.tables}

    # -- per-epoch feedback fold --------------------------------------
    def fold(self, epoch: int, t_end: float,
             statuses: List[ServiceStatus]) -> None:
        spec = self.spec
        stage_completions: List[Tuple[int, str]] = []
        window_victim_shards: List[float] = []
        window_cancelled_ops: List[str] = []
        for status in statuses:
            self.admit_levels[status.service] = status.admit_level
            service = status.service
            for key, st, latency, finish in status.shard_results:
                parts = key.split(":")
                rid = int(parts[0])
                req = self.requests[rid]
                if parts[1] != "entry":
                    self.edge_out[int(parts[1])] -= 1
                if st != "completed":
                    if st == "cancelled":
                        self.cancelled_shards += 1
                        cls = self.classes[req.cls_name]
                        window_cancelled_ops.append(cls.op_for(service))
                    if req.failed is None:
                        req.failed = st
                        self.counts[req.cls_name][st] += 1
                    continue
                if req.victim:
                    window_victim_shards.append(latency)
                req.stage_latency[service] = max(
                    req.stage_latency.get(service, 0.0), latency
                )
                req.stage_finish[service] = max(
                    req.stage_finish.get(service, 0.0), finish
                )
                req.shards_left[service] -= 1
                if req.shards_left[service] == 0:
                    req.stage_done[service] = True
                    stage_completions.append((rid, service))
        for rid, service in stage_completions:
            req = self.requests[rid]
            for e in spec.children_of(service):
                target = spec.edges[e].target
                req.parents_left[target] -= 1
                if req.parents_left[target] == 0 and req.failed is None:
                    for e2 in spec.parents_of(target):
                        for k in range(spec.edges[e2].fanout):
                            self.edge_queues[e2].append((rid, k))
            if (
                req.failed is None
                and not req.done
                and all(req.stage_done.values())
            ):
                req.done = True
                cp = req.critical_path(spec)
                self.counts[req.cls_name]["completed"] += 1
                if req.victim:
                    self.victim_done.append((req.arrival, cp))
                    self._window_victim_cp.append(cp)
        fleet_p99 = (
            percentile(window_victim_shards, 99)
            if window_victim_shards else float("nan")
        )
        completed = sum(
            1 for s in statuses
            for _, st, _, _ in s.shard_results if st == "completed"
        )
        offered = sum(s.offered_window for s in statuses)
        self.monitor.evaluate(
            t_end,
            {
                "p99": fleet_p99,
                "completed_window": float(completed),
                "offered_window": float(offered),
                "goodput": float(completed) / max(spec.epoch, 1e-9),
                "cancels_window": float(len(window_cancelled_ops)),
            },
            window_cancelled_ops,
        )

    # -- tower slow loop ----------------------------------------------
    def tower_directives(
        self, epoch: int, t_end: float, statuses: List[ServiceStatus]
    ) -> Dict[int, List[Tuple[str, float]]]:
        if self.tower is None or (epoch + 1) % self.tower_epochs != 0:
            self._maybe_clear_window(epoch)
            return {}
        cp_p99 = (
            percentile(self._window_victim_cp, 99)
            if self._window_victim_cp else float("nan")
        )
        service_p99 = {s.service: s.p99_window for s in statuses}
        shard_p99s = [
            p for p in service_p99.values() if p == p
        ]
        e2e = cp_p99 if cp_p99 == cp_p99 else (
            max(shard_p99s) if shard_p99s else float("nan")
        )
        targets = self.tower.update(epoch, t_end, e2e, service_p99)
        self._window_victim_cp = []
        return {
            self.spec.service_index(name): [("target", target)]
            for name, target in sorted(targets.items())
        }

    def _maybe_clear_window(self, epoch: int) -> None:
        # Victim-cp window only feeds the tower; bound its growth for
        # the controllers that never read it.
        if self.tower is None and len(self._window_victim_cp) > 10000:
            self._window_victim_cp = []

    # -- final result --------------------------------------------------
    def summarize(self, reports: List[Dict[str, Any]]) -> DagResult:
        spec = self.spec
        result = DagResult(
            controller=self.controller,
            n_services=len(spec.services),
            n_edges=len(spec.edges),
            duration=spec.duration,
            epochs=spec.epoch_count(),
        )
        for req in self.requests.values():
            if not req.done and req.failed is None:
                self.counts[req.cls_name]["unfinished"] += 1
        result.classes = self.counts
        latencies = [
            cp for arrival, cp in self.victim_done
            if arrival >= spec.warmup
        ]
        effective = max(spec.duration - spec.warmup, 1e-9)
        if latencies:
            result.victim_p99 = percentile(latencies, 99)
            result.victim_p50 = percentile(latencies, 50)
            result.victim_mean = sum(latencies) / len(latencies)
        result.goodput = (
            sum(1 for lat in latencies if lat <= spec.slo_latency)
            / effective
        )
        result.shed_upstream = self.shed_upstream
        result.cancelled_shards = self.cancelled_shards
        if self.tower is not None:
            result.tower_moves = list(self.tower.moves)
        result.health_events = [e.to_dict() for e in self.monitor.events]
        result.service_reports = reports
        return result


def _drive(spec, controller, advance_all, finish_all) -> DagResult:
    driver = _MeshDriver(spec, controller)
    directives: Dict[int, List[Tuple[str, float]]] = {}
    for epoch in range(spec.epoch_count()):
        t_end = spec.epoch_end(epoch)
        plan = driver.plan(epoch, t_end)
        statuses = advance_all(epoch, t_end, plan, directives)
        driver.fold(epoch, t_end, statuses)
        directives = driver.tower_directives(epoch, t_end, statuses)
    return driver.summarize(finish_all())


class Mesh:
    """Builds and drives one mesh run (serial path)."""

    def __init__(self, spec: DagSpec, controller: str) -> None:
        self.spec = spec
        self.controller = controller
        self.nodes = [
            ServiceNode(spec, service, index, controller)
            for index, service in enumerate(spec.services)
        ]

    def run(self) -> DagResult:
        return _drive(
            self.spec, self.controller,
            self._advance_serial, self._finish_serial,
        )

    def _advance_serial(self, epoch, t_end, plan, directives):
        return [
            node.advance(
                epoch, t_end,
                plan.get(node.index, []),
                directives.get(node.index, []),
            )
            for node in self.nodes
        ]

    def _finish_serial(self):
        return [node.finish() for node in self.nodes]


# ----------------------------------------------------------------------
# Sharded execution (campaign worker pool)
# ----------------------------------------------------------------------

def _shard_worker(spec_dict, controller, indices, conn):  # pragma: no cover
    """Persistent shard process: owns a subset of the mesh's services."""
    spec = DagSpec.from_dict(spec_dict)
    nodes = {
        index: ServiceNode(spec, spec.services[index], index, controller)
        for index in indices
    }
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "advance":
                _, epoch, t_end, inputs = message
                statuses = {}
                for index, (shards, directives) in inputs.items():
                    statuses[index] = nodes[index].advance(
                        epoch, t_end, shards, directives
                    )
                conn.send(statuses)
            elif kind == "finish":
                conn.send(
                    {index: node.finish() for index, node in nodes.items()}
                )
            else:
                break
    finally:
        conn.close()


class _MeshShardPool:
    """Fork-started shard processes driven over pipes."""

    def __init__(self, spec: DagSpec, controller: str, shards: int) -> None:
        ctx = multiprocessing.get_context("fork")
        n = len(spec.services)
        self.assignments = [
            [index for index in range(n) if index % shards == s]
            for s in range(shards)
        ]
        self.pipes = []
        self.procs = []
        spec_dict = spec.to_dict()
        for indices in self.assignments:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(spec_dict, controller, indices, child),
            )
            proc.daemon = True
            proc.start()
            child.close()
            self.pipes.append(parent)
            self.procs.append(proc)

    def advance_all(self, epoch, t_end, plan, directives):
        for pipe, indices in zip(self.pipes, self.assignments):
            inputs = {
                index: (plan.get(index, []), directives.get(index, []))
                for index in indices
            }
            pipe.send(("advance", epoch, t_end, inputs))
        merged: Dict[int, ServiceStatus] = {}
        for pipe in self.pipes:
            merged.update(pipe.recv())
        return [merged[index] for index in sorted(merged)]

    def finish_all(self):
        for pipe in self.pipes:
            pipe.send(("finish",))
        merged: Dict[int, Dict[str, Any]] = {}
        for pipe in self.pipes:
            merged.update(pipe.recv())
        return [merged[index] for index in sorted(merged)]

    def close(self):
        for pipe in self.pipes:
            try:
                pipe.send(("stop",))
                pipe.close()
            except OSError:
                pass
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()


def run_dag(
    spec: DagSpec,
    controller: str = "atropos",
    jobs: Optional[int] = None,
) -> DagResult:
    """Run a mesh to completion; serial or sharded, same bytes.

    ``jobs`` defaults to the campaign worker-pool settings
    (:func:`repro.campaign.settings` overlays / ``REPRO_JOBS``);
    service simulations shard round-robin across ``min(jobs, services)``
    persistent fork-started workers.  Platforms without fork -- and
    daemonized campaign pool workers, which may not fork again -- fall
    back to serial execution (identical bytes either way).
    """
    from ..campaign import current_settings

    resolved = current_settings(jobs=jobs)
    shards = min(resolved.jobs, len(spec.services))
    if (
        shards <= 1
        or "fork" not in multiprocessing.get_all_start_methods()
        or multiprocessing.current_process().daemon
    ):
        return Mesh(spec, controller).run()
    pool = _MeshShardPool(spec, controller, shards)
    try:
        return _drive(spec, controller, pool.advance_all, pool.finish_all)
    finally:
        pool.close()
