"""The fleet: epoch loop, shard workers, and the run result.

Execution model (the key to serial==sharded byte parity): within an
epoch every node advances independently -- the balancer pre-assigns the
epoch's arrivals using epoch-*start* state, and coordinator directives
issued at epoch ``k`` are delivered at the start of epoch ``k + 1``.
Cross-node coupling therefore happens only at epoch boundaries, through
picklable values (arrival tuples, :class:`NodeStatus`,
:class:`Directive`), so a node's trajectory is a pure function of the
spec and the boundary inputs.  The sharded path runs the *same*
``ClusterNode.advance`` code in persistent fork-started workers (one
round-trip per epoch per shard); shard count comes from the campaign
worker-pool settings (``repro.campaign.settings`` / ``REPRO_JOBS``).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..sim.metrics import percentile
from .balancer import LoadBalancer
from .coordinator import GlobalCoordinator
from .directives import QUARANTINE, Directive
from .node import ClusterNode, NodeStatus
from .spec import FleetSpec


@dataclass
class FleetResult:
    """Everything a fleet run produces (JSON-able, deterministic)."""

    spec_mode: str
    policy: str
    n_nodes: int
    duration: float
    #: Fleet-wide victim ("point") p99 over post-warmup epochs, seconds.
    victim_p99: float = float("nan")
    #: Fleet-wide completions under SLO per second, post-warmup.
    goodput: float = 0.0
    #: All delivered cancellations (local + directive).
    cancels_total: int = 0
    #: Delivered cancellations whose op was not an expected culprit.
    wrong_cancels: int = 0
    wrong_culprit_rate: float = 0.0
    directives: List[Dict[str, Any]] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    decisions: List[Dict[str, Any]] = field(default_factory=list)
    health_events: List[Dict[str, Any]] = field(default_factory=list)
    lb: Dict[str, Any] = field(default_factory=dict)
    node_reports: List[Dict[str, Any]] = field(default_factory=list)
    epochs: int = 0

    def to_dict(self) -> Dict[str, Any]:
        out = dict(self.__dict__)
        out["victim_p99"] = (
            None if self.victim_p99 != self.victim_p99
            else round(self.victim_p99, 9)
        )
        out["goodput"] = round(self.goodput, 9)
        out["wrong_culprit_rate"] = round(self.wrong_culprit_rate, 9)
        for report in out["node_reports"]:
            for key in ("throughput", "p99_latency"):
                report[key] = round(report[key], 9)
        return out

    def digest(self) -> str:
        """Canonical content hash (parity / determinism tests)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def render(self) -> str:
        """Operator-facing text report."""
        p99 = (
            "n/a" if self.victim_p99 != self.victim_p99
            else f"{self.victim_p99 * 1000:.1f}ms"
        )
        lines = [
            f"fleet: {self.n_nodes} nodes, policy={self.policy}, "
            f"mode={self.spec_mode}, {self.epochs} epochs",
            f"victim p99 {p99} | goodput {self.goodput:.1f}/s | "
            f"cancels {self.cancels_total} "
            f"(wrong {self.wrong_cancels}, "
            f"rate {self.wrong_culprit_rate:.2f})",
            f"directives {len(self.directives)} | "
            f"quarantined {self.quarantined or '-'}",
            "",
            f"{'node':<10} {'backend':<9} {'tput':>7} {'p99':>9} "
            f"{'local':>6} {'directive':>10}",
        ]
        for report in self.node_reports:
            p99_node = report["p99_latency"]
            p99_text = (
                "n/a" if p99_node != p99_node else f"{p99_node * 1000:.1f}ms"
            )
            lines.append(
                f"{report['node']:<10} {report['backend']:<9} "
                f"{report['throughput']:>7.1f} {p99_text:>9} "
                f"{report['local_cancels']:>6} "
                f"{report['directive_cancels']:>10}"
            )
        return "\n".join(lines)


class Fleet:
    """Builds and drives one fleet run (serial path)."""

    def __init__(self, spec: FleetSpec) -> None:
        self.spec = spec
        self.balancer = LoadBalancer(spec)
        self.coordinator = GlobalCoordinator(spec)
        self.nodes = [
            ClusterNode(spec, node_spec, index)
            for index, node_spec in enumerate(spec.nodes)
        ]

    def run(self) -> FleetResult:
        return _drive(self.spec, self.balancer, self.coordinator,
                      self._advance_serial, self._finish_serial)

    def _advance_serial(self, epoch, t_end, plan, directives):
        return [
            node.advance(epoch, t_end, plan.get(node.index, []), directives)
            for node in self.nodes
        ]

    def _finish_serial(self):
        return [node.finish() for node in self.nodes]


def _drive(spec, balancer, coordinator, advance_all, finish_all):
    """The epoch loop shared by serial and sharded execution."""
    statuses_by_epoch: List[List[NodeStatus]] = []
    pending: List[Directive] = []
    for epoch in range(spec.epoch_count()):
        t_end = spec.epoch_end(epoch)
        plan = balancer.assign(t_end)
        statuses = advance_all(epoch, t_end, plan, pending)
        statuses_by_epoch.append(statuses)
        balancer.update(statuses)
        issued = coordinator.observe(epoch, t_end, statuses)
        pending = []
        if spec.mode == "coordinated":
            for directive in issued:
                if directive.kind == QUARANTINE:
                    balancer.quarantine(directive.op)
                else:
                    pending.append(directive)
    reports = finish_all()
    return _summarize(spec, balancer, coordinator, statuses_by_epoch, reports)


def _summarize(spec, balancer, coordinator, statuses_by_epoch, reports):
    result = FleetResult(
        spec_mode=spec.mode,
        policy=spec.policy,
        n_nodes=len(spec.nodes),
        duration=spec.duration,
        epochs=len(statuses_by_epoch),
    )
    latencies: List[float] = []
    good = 0.0
    for statuses in statuses_by_epoch:
        for status in statuses:
            if status.t <= spec.warmup:
                continue
            latencies.extend(status.victim_latencies)
            good += status.goodput_window * spec.epoch
    effective = max(spec.duration - spec.warmup, 1e-9)
    if latencies:
        result.victim_p99 = percentile(latencies, 99)
    result.goodput = good / effective
    expected = set(spec.expected_culprits)
    cancelled_ops: List[str] = []
    for report in reports:
        cancelled_ops.extend(report["local_cancelled_ops"])
        cancelled_ops.extend(report["directive_cancelled_ops"])
    result.cancels_total = len(cancelled_ops)
    result.wrong_cancels = sum(
        1 for op in cancelled_ops if op not in expected
    )
    result.wrong_culprit_rate = (
        result.wrong_cancels / result.cancels_total
        if result.cancels_total
        else 0.0
    )
    result.directives = [d.to_dict() for d in coordinator.directives]
    result.quarantined = list(coordinator.quarantined)
    result.decisions = [d.to_dict() for d in coordinator.decisions]
    result.health_events = [
        e.to_dict() for e in coordinator.monitor.events
    ]
    result.lb = balancer.stats()
    result.node_reports = reports
    return result


# ----------------------------------------------------------------------
# Sharded execution (campaign worker pool)
# ----------------------------------------------------------------------

def _shard_worker(spec_dict, indices, conn):  # pragma: no cover - subprocess
    """Persistent shard process: owns a subset of the fleet's nodes."""
    spec = FleetSpec.from_dict(spec_dict)
    nodes = {
        index: ClusterNode(spec, spec.nodes[index], index)
        for index in indices
    }
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "advance":
                _, epoch, t_end, inputs = message
                statuses = {}
                for index, (arrivals, directives) in inputs.items():
                    statuses[index] = nodes[index].advance(
                        epoch, t_end, arrivals, directives
                    )
                conn.send(statuses)
            elif kind == "finish":
                conn.send(
                    {index: node.finish() for index, node in nodes.items()}
                )
            else:
                break
    finally:
        conn.close()


class _ShardPool:
    """Fork-started shard processes driven over pipes."""

    def __init__(self, spec: FleetSpec, shards: int) -> None:
        ctx = multiprocessing.get_context("fork")
        n = len(spec.nodes)
        self.assignments = [
            [index for index in range(n) if index % shards == s]
            for s in range(shards)
        ]
        self.pipes = []
        self.procs = []
        spec_dict = spec.to_dict()
        for indices in self.assignments:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker, args=(spec_dict, indices, child)
            )
            proc.daemon = True
            proc.start()
            child.close()
            self.pipes.append(parent)
            self.procs.append(proc)

    def advance_all(self, epoch, t_end, plan, directives):
        for pipe, indices in zip(self.pipes, self.assignments):
            inputs = {
                index: (plan.get(index, []), directives)
                for index in indices
            }
            pipe.send(("advance", epoch, t_end, inputs))
        merged: Dict[int, NodeStatus] = {}
        for pipe in self.pipes:
            merged.update(pipe.recv())
        return [merged[index] for index in sorted(merged)]

    def finish_all(self):
        for pipe in self.pipes:
            pipe.send(("finish",))
        merged: Dict[int, Dict[str, Any]] = {}
        for pipe in self.pipes:
            merged.update(pipe.recv())
        return [merged[index] for index in sorted(merged)]

    def close(self):
        for pipe in self.pipes:
            try:
                pipe.send(("stop",))
                pipe.close()
            except OSError:
                pass
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()


def run_fleet(spec: FleetSpec, jobs: Optional[int] = None) -> FleetResult:
    """Run a fleet to completion; serial or sharded, same bytes.

    ``jobs`` defaults to the campaign worker-pool settings
    (:func:`repro.campaign.settings` overlays / ``REPRO_JOBS``); node
    simulations are sharded round-robin across ``min(jobs, nodes)``
    persistent fork-started workers.  Platforms without the fork start
    method fall back to serial execution.
    """
    from ..campaign import current_settings

    resolved = current_settings(jobs=jobs)
    shards = min(resolved.jobs, len(spec.nodes))
    if shards <= 1 or "fork" not in multiprocessing.get_all_start_methods():
        return Fleet(spec).run()
    balancer = LoadBalancer(spec)
    coordinator = GlobalCoordinator(spec)
    pool = _ShardPool(spec, shards)
    try:
        return _drive(
            spec, balancer, coordinator, pool.advance_all, pool.finish_all
        )
    finally:
        pool.close()
