"""Fleet specifications: nodes, routing, scenario, coordinator knobs.

A :class:`FleetSpec` fully determines a cluster run: same spec + same
seed -> byte-identical :class:`~repro.cluster.fleet.FleetResult`,
whether the per-node simulations run serially or sharded across worker
processes.  Specs are plain JSON-able data so shard workers can rebuild
their nodes from the spec instead of unpickling live simulation state.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Sequence, Tuple

#: Backends a node may run (the repro.apps models wired into the fleet).
BACKENDS = ("mysql", "postgres")

#: Control modes: "none" (uncontrolled), "local" (per-node ATROPOS
#: pipelines cancel on their own view), "coordinated" (per-node pipelines
#: run detect-only; the global coordinator issues fleet-wide directives).
MODES = ("none", "local", "coordinated")


@dataclass(frozen=True)
class NodeSpec:
    """One app node of the fleet."""

    name: str
    backend: str = "mysql"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; known: {BACKENDS}"
            )


@dataclass
class FleetSpec:
    """Everything one fleet run needs (JSON-able, validated)."""

    nodes: List[NodeSpec] = field(default_factory=list)
    policy: str = "least-outstanding"
    mode: str = "coordinated"
    seed: int = 0
    duration: float = 30.0
    warmup: float = 5.0
    #: Coordinator scrape / LB sync interval, simulated seconds.  Nodes
    #: advance independently within an epoch; routing feedback and
    #: directives cross node boundaries only at epoch edges.
    epoch: float = 0.5
    slo_latency: float = 0.1

    # --- foreground load (the victims) ---
    #: Fleet-wide lightweight arrivals per second (routed by the LB).
    arrival_rate: float = 360.0
    point_weight: float = 0.85
    tables: int = 4

    # --- decoy culprit: a big single-node holder ---
    report_start: float = 2.0
    report_period: float = 3.0
    #: MySQL decoy: pages pinned up-front by ``report_query``.
    report_pages: int = 900
    #: Kept below ``report_period`` so only one decoy is ever live --
    #: the decoy must be a genuinely single-node holder.
    report_duration: float = 2.5
    #: PostgreSQL decoy: rows of a ``bulk_update``.
    report_rows: float = 3e5

    # --- the cross-node culprit: a scan fanned out to every node ---
    scan_start: float = 6.0
    scan_period: float = 4.0
    #: Rows each node's scan shard streams (MySQL ``scan``).  Sized so a
    #: shard overruns the buffer pool's slack and thrashes the hot set
    #: for a couple of seconds (the fleet-wide damage window).
    scan_rows: float = 4e5
    #: Bytes per row for the PostgreSQL shard (``vacuum`` I/O volume).
    pg_bytes_per_row: float = 400.0

    # --- backend sensitivity (how hard the thrash hits the victims) ---
    #: Hot pages a lightweight MySQL op touches (misses pay the disk
    #: penalty); raised from the single-node default so buffer-pool
    #: thrash shows up in victim tails at cluster arrival rates.
    mysql_pages_per_light_op: int = 6
    #: Per-miss disk penalty, seconds (a loaded disk, not an idle one).
    mysql_miss_penalty: float = 0.02

    # --- coordinator slow loop ---
    #: Fleet p99 trigger: victim p99 above ``slo_latency * slo_slack``.
    slo_slack: float = 1.5
    #: A culprit must show positive evidence on at least this many nodes
    #: in the same epoch (the cross-node test no local view can run).
    min_culprit_nodes: int = 2
    #: Epochs of candidate evidence the coordinator attributes over.  A
    #: hit-and-run culprit (short fanned-out burst) finishes before its
    #: damage peaks in the victim tail; the window lets attribution look
    #: back at evidence scraped while the culprit was live.
    evidence_window: int = 4
    #: Minimum windowed evidence score to be attributable.  Victims show
    #: up as candidates too (every op holds *some* resource while the
    #: fleet is slow); their scores are orders of magnitude below a real
    #: holder's, and the floor keeps post-quarantine residual overload
    #: from walking down the candidate list onto them.
    min_culprit_score: float = 10.0
    #: Cancel directives for the same op across this many epochs escalate
    #: to an LB quarantine (stop routing the op entirely).
    quarantine_offenses: int = 2
    #: Per-hop cancel propagation delay inside a node's TaskTree.
    directive_delay: float = 0.002
    #: Ops the scenario considers true culprits (wrong-culprit metric).
    expected_culprits: Tuple[str, ...] = ("fanout_scan",)

    # --- failure model (repro.core.distributed) ---
    #: ``(node_name, start, end)`` windows during which the node is
    #: partitioned from the coordinator: directives queue and retry.
    partitions: Tuple[Tuple[str, float, float], ...] = ()

    def __post_init__(self) -> None:
        self.nodes = [
            n if isinstance(n, NodeSpec) else NodeSpec(**n)
            for n in self.nodes
        ]
        self.partitions = tuple(tuple(p) for p in self.partitions)
        self.expected_culprits = tuple(self.expected_culprits)
        self.validate()

    def validate(self) -> None:
        problems = []
        if not self.nodes:
            problems.append("nodes must not be empty")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            problems.append(f"duplicate node names: {names}")
        if self.mode not in MODES:
            problems.append(f"mode must be one of {MODES} (got {self.mode!r})")
        for name in ("duration", "epoch", "slo_latency", "arrival_rate"):
            if getattr(self, name) <= 0:
                problems.append(f"{name} must be > 0")
        if not 0 <= self.warmup < self.duration:
            problems.append("warmup must be in [0, duration)")
        if self.epoch > self.duration:
            problems.append("epoch must not exceed duration")
        if not 0 < self.point_weight <= 1:
            problems.append("point_weight must be in (0, 1]")
        if self.min_culprit_nodes < 1:
            problems.append("min_culprit_nodes must be >= 1")
        known = set(names)
        for node, start, end in self.partitions:
            if node not in known:
                problems.append(f"partition names unknown node {node!r}")
            if not 0 <= start < end:
                problems.append(f"bad partition window ({start}, {end})")
        if problems:
            raise ValueError("invalid FleetSpec: " + "; ".join(problems))

    # ------------------------------------------------------------------
    # Epoch arithmetic
    # ------------------------------------------------------------------
    def epoch_count(self) -> int:
        """Number of epochs covering [0, duration] (last may be short)."""
        import math

        return max(1, math.ceil(self.duration / self.epoch - 1e-9))

    def epoch_end(self, index: int) -> float:
        return min(self.duration, (index + 1) * self.epoch)

    # ------------------------------------------------------------------
    # Serialization (shard workers rebuild nodes from the spec)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetSpec":
        return cls(**data)

    def with_mode(self, mode: str) -> "FleetSpec":
        return replace(self, mode=mode)


def demo_fleet(
    n_nodes: int = 3,
    backends: Sequence[str] = ("mysql", "postgres"),
    **overrides: Any,
) -> FleetSpec:
    """The standard cross-node-culprit scenario.

    ``n_nodes`` nodes cycle through ``backends``; a decoy
    ``heavy_report`` rotates across single nodes while a recurring
    ``fanout_scan`` fans one shard to *every* node -- the op whose
    damage no per-node view sees whole.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    nodes = [
        NodeSpec(name=f"node-{i}", backend=backends[i % len(backends)])
        for i in range(n_nodes)
    ]
    return FleetSpec(nodes=nodes, **overrides)
