"""The load-balancer tier: arrival generation and per-epoch routing.

The balancer pre-generates the whole fleet arrival stream at build time
(every param draw included, from forks of the fleet seed), then assigns
each epoch's slice to nodes using the configured routing policy and its
*estimates* of node state -- LB-local outstanding counters corrected by
the per-epoch status feedback.  ``fanout_scan`` arrivals fan one shard
to every node (the cross-node culprit); quarantined ops are dropped at
the balancer.

Because arrivals are fully materialized up front and routing state only
changes at epoch boundaries, assignment is a pure function of (spec,
seed, status history) -- identical under serial and sharded execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from ..sim.rng import Rng
from .directives import priority_of
from .node import Arrival, NodeStatus
from .routing import NodeView, RoutingPolicy, make_policy
from .spec import FleetSpec

if TYPE_CHECKING:  # pragma: no cover
    pass


def build_arrivals(spec: FleetSpec) -> List[Tuple[float, str, dict, str]]:
    """Materialize the fleet-wide arrival stream (sorted by time).

    Three components: the Poisson lightweight mix (the victims), the
    periodic single-node ``heavy_report`` decoy, and the recurring
    ``fanout_scan`` culprit the balancer fans out to every node.
    """
    rng = Rng(spec.seed).fork("cluster:arrivals")
    table_rng = Rng(spec.seed).fork("cluster:tables")
    out: List[Tuple[float, str, dict, str]] = []
    mean = 1.0 / spec.arrival_rate
    t = 0.0
    while True:
        t += rng.exponential(mean)
        if t >= spec.duration:
            break
        op = "point" if rng.random() < spec.point_weight else "write"
        params = {"table": table_rng.randint(0, spec.tables - 1)}
        out.append((t, op, params, "lb"))
    at = spec.report_start
    while at < spec.duration:
        out.append((at, "heavy_report", {}, "report"))
        at += spec.report_period
    at = spec.scan_start
    while at < spec.duration:
        out.append((at, "fanout_scan", {"rows": spec.scan_rows}, "scan"))
        at += spec.scan_period
    out.sort(key=lambda a: a[0])
    return out


class LoadBalancer:
    """Routes the pre-generated stream epoch by epoch."""

    def __init__(self, spec: FleetSpec, policy: RoutingPolicy = None) -> None:
        self.spec = spec
        self.policy = policy or make_policy(spec.policy)
        self.rng = Rng(spec.seed).fork("cluster:lb")
        self.arrivals = build_arrivals(spec)
        self._cursor = 0
        n = len(spec.nodes)
        self.views = [
            NodeView(index=i, name=spec.nodes[i].name) for i in range(n)
        ]
        self._assigned = [0] * n
        self._finished = [0] * n
        #: Ops the coordinator has quarantined (no longer routed).
        self.quarantined: List[str] = []
        #: Arrivals dropped because their op was quarantined, by op.
        self.quarantine_dropped: Dict[str, int] = {}
        #: Arrivals shed by the admission policy (DAGOR), by op.
        self.shed: Dict[str, int] = {}
        self.routed = 0

    # ------------------------------------------------------------------
    # Epoch assignment
    # ------------------------------------------------------------------
    def assign(self, t_end: float) -> Dict[int, List[Arrival]]:
        """Route every arrival with time < ``t_end`` not yet assigned."""
        plan: Dict[int, List[Arrival]] = {
            view.index: [] for view in self.views
        }
        arrivals = self.arrivals
        cursor = self._cursor
        while cursor < len(arrivals) and arrivals[cursor][0] < t_end:
            t, op, params, client = arrivals[cursor]
            cursor += 1
            if op in self.quarantined:
                self.quarantine_dropped[op] = (
                    self.quarantine_dropped.get(op, 0) + 1
                )
                continue
            if op == "fanout_scan":
                # The cross-node culprit: one shard per node.
                for view in self.views:
                    if priority_of(op) > view.admit_priority:
                        self.shed[op] = self.shed.get(op, 0) + 1
                        continue
                    plan[view.index].append((t, op, dict(params), client))
                    self._assigned[view.index] += 1
                    view.outstanding += 1
                self.routed += 1
                continue
            chosen = self.policy.choose(op, self.views, self.rng)
            if chosen is None:
                self.shed[op] = self.shed.get(op, 0) + 1
                continue
            plan[chosen].append((t, op, params, client))
            self._assigned[chosen] += 1
            self.views[chosen].outstanding += 1
            self.routed += 1
        self._cursor = cursor
        return plan

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def update(self, statuses: List[NodeStatus]) -> None:
        """Fold the epoch's node feedback into the routing views."""
        for index, status in enumerate(statuses):
            finished = (
                status.completed_window
                + status.cancelled_window
                + status.dropped_window
            )
            self._finished[index] += finished
            view = self.views[index]
            view.outstanding = max(
                0, self._assigned[index] - self._finished[index]
            )
            view.admit_priority = status.admit_priority

    def quarantine(self, op: str) -> None:
        if op not in self.quarantined:
            self.quarantined.append(op)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "policy": self.policy.name,
            "routed": self.routed,
            "assigned": list(self._assigned),
            "shed": {k: self.shed[k] for k in sorted(self.shed)},
            "quarantined": list(self.quarantined),
            "quarantine_dropped": {
                k: self.quarantine_dropped[k]
                for k in sorted(self.quarantine_dropped)
            },
        }
