"""Coordinator directives and the cluster-level operation vocabulary.

The load balancer and the nodes speak a backend-neutral op vocabulary
(``point``/``write``/``heavy_report``/``fanout_scan``); each node maps
those onto its backend's native handlers (see
:meth:`repro.cluster.node.ClusterNode`).  Directives are symbolic --
"cancel every live ``fanout_scan``", "quarantine ``fanout_scan``" -- so
they serialize across shard-process pipes and survive node restarts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

#: The cluster-level ops, in DAGOR admission-priority order: lower value
#: = more business-critical = shed last.
CLUSTER_OPS = ("point", "write", "heavy_report", "fanout_scan")

_PRIORITY = {name: index for index, name in enumerate(CLUSTER_OPS)}

#: Directive kinds.
CANCEL = "cancel"
QUARANTINE = "quarantine"


def priority_of(op: str) -> int:
    """DAGOR priority of a cluster op (unknown ops shed first)."""
    return _PRIORITY.get(op, len(CLUSTER_OPS))


@dataclass(frozen=True)
class Directive:
    """One fleet-wide coordinator action, addressed to every node.

    ``cancel`` asks each node to cancel its live tasks running ``op``
    (delivered through a :class:`repro.core.distributed.TaskTree`, so
    partitioned nodes miss it and retry later); ``quarantine``
    additionally tells the load balancer to stop routing ``op``.
    """

    epoch: int
    kind: str
    op: str
    reason: str = ""
    issued_at: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in (CANCEL, QUARANTINE):
            raise ValueError(f"unknown directive kind {self.kind!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "kind": self.kind,
            "op": self.op,
            "reason": self.reason,
            "issued_at": round(self.issued_at, 9),
        }
