"""The global coordinator: the fleet's slow attribution loop.

Once per epoch the coordinator receives every node's
:class:`~repro.cluster.node.NodeStatus` and runs the cross-node test no
local pipeline can: sum the contention-weighted candidate scores *by op
across nodes* and require the culprit to show positive evidence on at
least ``min_culprit_nodes`` nodes in the same epoch.  A big single-node
holder (the decoy ``heavy_report``) fails the breadth test; the fanned-
out scan -- individually modest on every node -- passes it.

On a positive attribution the coordinator issues a fleet-wide cancel
directive (delivered per node through ``repro.core.distributed``); ops
cancelled repeatedly escalate to an LB quarantine, cutting future damage
off at the routing tier (the DAGOR lesson: overload feedback must reach
admission, not just the replica).

The coordinator also feeds a :class:`~repro.telemetry.health.HealthMonitor`
with fleet-level windows, so standard health rules (p99-ceiling,
cancel-storm, wrong-culprit-rate) audit the fleet exactly as they audit
single-node runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..sim.metrics import percentile
from ..telemetry.health import HealthMonitor, default_health_rules
from .directives import CANCEL, QUARANTINE, Directive
from .node import NodeStatus
from .spec import FleetSpec


@dataclass
class CoordinatorDecision:
    """One epoch's attribution verdict (the fleet's decision log)."""

    epoch: int
    t: float
    fleet_p99: float
    overloaded: bool
    verdict: str  # "calm" | "no-cross-node-culprit" | "cancel" | "quarantine"
    op: str = ""
    score: float = 0.0
    breadth: int = 0
    #: Per-op (summed score, node breadth) evidence this epoch.
    evidence: Dict[str, Tuple[float, int]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "t": round(self.t, 9),
            "fleet_p99": None
            if self.fleet_p99 != self.fleet_p99
            else round(self.fleet_p99, 9),
            "overloaded": self.overloaded,
            "verdict": self.verdict,
            "op": self.op,
            "score": round(self.score, 9),
            "breadth": self.breadth,
            "evidence": {
                op: [round(score, 9), breadth]
                for op, (score, breadth) in sorted(self.evidence.items())
            },
        }


class GlobalCoordinator:
    """Aggregates node statuses; issues fleet-wide directives."""

    def __init__(self, spec: FleetSpec) -> None:
        self.spec = spec
        self.decisions: List[CoordinatorDecision] = []
        self.directives: List[Directive] = []
        self.quarantined: List[str] = []
        self._offenses: Dict[str, int] = {}
        #: Last ``spec.evidence_window`` epochs of per-op evidence.
        self._evidence_history: List[Dict[str, Tuple[float, int]]] = []
        self.monitor = HealthMonitor(
            default_health_rules(
                slo=spec.slo_latency,
                expected_culprits=spec.expected_culprits,
            )
        )

    # ------------------------------------------------------------------
    # The slow loop
    # ------------------------------------------------------------------
    def observe(
        self, epoch: int, t: float, statuses: List[NodeStatus]
    ) -> List[Directive]:
        """Attribute this epoch; returns directives (empty when calm).

        Directives are returned regardless of the fleet mode -- the
        caller decides whether to deliver them (coordinated) or merely
        record what the coordinator *would* have done (local/none).
        """
        latencies: List[float] = []
        cancelled_ops: List[str] = []
        completed = goodput = offered = cancels = 0
        for status in statuses:
            latencies.extend(status.victim_latencies)
            completed += status.completed_window
            offered += status.offered_window
            goodput += status.goodput_window
            cancelled_ops.extend(status.local_cancelled_ops)
            cancels += (
                len(status.local_cancelled_ops)
                + status.directive_cancels_window
            )
        fleet_p99 = (
            percentile(latencies, 99) if latencies else float("nan")
        )
        self.monitor.evaluate(
            t,
            {
                "p99": fleet_p99,
                "completed_window": float(completed),
                "offered_window": float(offered),
                "goodput": goodput,
                "cancels_window": float(cancels),
            },
            cancelled_ops,
        )
        epoch_evidence = self._aggregate(statuses)
        self._evidence_history.append(epoch_evidence)
        window = max(1, self.spec.evidence_window)
        if len(self._evidence_history) > window:
            del self._evidence_history[:-window]
        evidence = self._windowed_evidence()
        overloaded = (
            fleet_p99 == fleet_p99
            and fleet_p99 > self.spec.slo_latency * self.spec.slo_slack
        )
        decision = CoordinatorDecision(
            epoch=epoch,
            t=t,
            fleet_p99=fleet_p99,
            overloaded=overloaded,
            verdict="calm",
            evidence=evidence,
        )
        issued: List[Directive] = []
        if overloaded:
            culprit = self._attribute(evidence)
            if culprit is None:
                decision.verdict = "no-cross-node-culprit"
            else:
                op, (score, breadth) = culprit
                decision.op = op
                decision.score = score
                decision.breadth = breadth
                offenses = self._offenses.get(op, 0) + 1
                self._offenses[op] = offenses
                reason = (
                    f"score {score:.3f} on {breadth} nodes "
                    f"(fleet p99 {fleet_p99 * 1000:.0f}ms)"
                )
                issued.append(
                    Directive(
                        epoch=epoch, kind=CANCEL, op=op,
                        reason=reason, issued_at=t,
                    )
                )
                decision.verdict = "cancel"
                if (
                    offenses >= self.spec.quarantine_offenses
                    and op not in self.quarantined
                ):
                    self.quarantined.append(op)
                    issued.append(
                        Directive(
                            epoch=epoch, kind=QUARANTINE, op=op,
                            reason=f"{offenses} offenses", issued_at=t,
                        )
                    )
                    decision.verdict = "quarantine"
        self.decisions.append(decision)
        self.directives.extend(issued)
        return issued

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def _aggregate(
        self, statuses: List[NodeStatus]
    ) -> Dict[str, Tuple[float, int]]:
        """Sum candidate scores by op across nodes; count node breadth."""
        scores: Dict[str, float] = {}
        breadth: Dict[str, int] = {}
        for status in statuses:
            for op in sorted(status.candidates):
                scores[op] = scores.get(op, 0.0) + status.candidates[op]
                breadth[op] = breadth.get(op, 0) + 1
        return {op: (scores[op], breadth[op]) for op in sorted(scores)}

    def _windowed_evidence(self) -> Dict[str, Tuple[float, int]]:
        """Merge the history window: summed score, max per-epoch breadth.

        Breadth is the *within-epoch* maximum, not a cross-epoch union --
        a single-node decoy observed on different nodes in different
        epochs (it rotates with routing) must not fake fleet-wide spread.
        """
        scores: Dict[str, float] = {}
        breadth: Dict[str, int] = {}
        for epoch_evidence in self._evidence_history:
            for op, (score, nodes) in epoch_evidence.items():
                scores[op] = scores.get(op, 0.0) + score
                breadth[op] = max(breadth.get(op, 0), nodes)
        return {op: (scores[op], breadth[op]) for op in sorted(scores)}

    def _attribute(
        self, evidence: Dict[str, Tuple[float, int]]
    ) -> "Tuple[str, Tuple[float, int]] | None":
        """The cross-node test: max summed score with enough breadth."""
        eligible = [
            (op, entry)
            for op, entry in evidence.items()
            if entry[1] >= self.spec.min_culprit_nodes
            and entry[0] >= self.spec.min_culprit_score
            and op not in self.quarantined
        ]
        if not eligible:
            return None
        return max(eligible, key=lambda item: (item[1][0], item[0]))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "decisions": [d.to_dict() for d in self.decisions],
            "directives": [d.to_dict() for d in self.directives],
            "quarantined": list(self.quarantined),
            "health_events": [e.to_dict() for e in self.monitor.events],
        }
