"""Fleet simulation behind a load balancer with cross-node attribution.

The paper evaluates targeted cancellation on a single application
instance; this package scales the scenario out to a *fleet*: N app nodes
(mixed backends from :mod:`repro.apps`, each wrapping its own sim
environment, driver, and per-node ATROPOS pipeline), a load-balancer
tier with pluggable routing policies, and a :class:`GlobalCoordinator`
slow loop that aggregates per-node telemetry each epoch to attribute
culprits whose damage spans nodes -- the DAGOR / Autothrottle bi-level
shape (per-node fast loop + global slow loop).

Entry points:

* :func:`run_fleet` -- run a :class:`FleetSpec` to completion (serial or
  sharded across processes with byte-identical results).
* :func:`demo_fleet` -- the standard cross-node-culprit scenario spec.
"""

from .coordinator import CoordinatorDecision, GlobalCoordinator
from .directives import CLUSTER_OPS, Directive, priority_of
from .balancer import LoadBalancer
from .fleet import Fleet, FleetResult, run_fleet
from .mesh import DagResult, Mesh, ServiceNode, ServiceStatus, run_dag
from .node import ClusterNode, NodeStatus
from .routing import (
    DagorAdmission,
    LeastOutstanding,
    NodeView,
    PowerOfTwoChoices,
    RoundRobin,
    RoutingPolicy,
    make_policy,
    policy_names,
)
from .spec import FleetSpec, NodeSpec, demo_fleet

__all__ = [
    "CLUSTER_OPS",
    "ClusterNode",
    "CoordinatorDecision",
    "DagResult",
    "DagorAdmission",
    "Directive",
    "Fleet",
    "FleetResult",
    "FleetSpec",
    "GlobalCoordinator",
    "Mesh",
    "ServiceNode",
    "ServiceStatus",
    "LeastOutstanding",
    "LoadBalancer",
    "NodeSpec",
    "NodeStatus",
    "NodeView",
    "PowerOfTwoChoices",
    "RoundRobin",
    "RoutingPolicy",
    "demo_fleet",
    "make_policy",
    "policy_names",
    "priority_of",
    "run_dag",
    "run_fleet",
]
