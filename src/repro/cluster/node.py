"""One fleet node: its own sim environment, app, driver, and pipeline.

A :class:`ClusterNode` wraps a complete single-node simulation (exactly
the stack :func:`repro.experiments.harness.run_simulation` assembles)
behind an epoch-synchronized ``advance`` API: the fleet hands it the
epoch's routed arrivals and any coordinator directives, the node runs
its environment to the epoch end, and returns a JSON-able
:class:`NodeStatus` snapshot.  Because a node never touches another
node's state mid-epoch, the same ``advance`` calls produce byte-identical
results whether nodes live in one process or are sharded across workers.

Cluster ops (``point``/``write``/``heavy_report``/``fanout_scan``) are
registered as *alias handlers* that dispatch to the backend's native
handlers, so request records, candidate evidence, and cancel signals all
carry the cluster-level op names the coordinator aggregates by.

Directive delivery reuses :mod:`repro.core.distributed`: each cancel
directive builds a :class:`~repro.core.distributed.TaskTree` over the
node's matching live tasks and propagates with per-hop delay; a
partitioned node (spec ``partitions``) defers the directive and retries
it on later epochs, and tasks another path already cancelled count as
delivered (``already-cancelling``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..apps.mysql import MySQL, MySQLConfig
from ..apps.postgres import PostgreSQL, PostgresConfig
from ..apps.base import Operation
from ..core.atropos import Atropos
from ..core.config import AtroposConfig
from ..core.distributed import Node as DistNode
from ..core.distributed import TaskTree
from ..core.task import CancellableTask
from ..core.types import CancelSignal
from ..sim.environment import Environment
from ..sim.metrics import MetricsCollector, percentile
from ..sim.rng import Rng
from ..workloads.driver import Driver
from .directives import CANCEL, Directive
from .spec import FleetSpec, NodeSpec

if TYPE_CHECKING:  # pragma: no cover
    pass

#: Arrival tuple crossing the LB -> node boundary (picklable).
#: ``(time, op, params, client_id)``.
Arrival = tuple


@dataclass
class NodeStatus:
    """One node's epoch-end snapshot (crosses shard-process pipes)."""

    node: str
    backend: str
    epoch: int
    t: float
    outstanding: int = 0
    offered_window: int = 0
    completed_window: int = 0
    cancelled_window: int = 0
    dropped_window: int = 0
    completions_by_op: Dict[str, int] = field(default_factory=dict)
    #: Latencies of completed victim ("point") requests this window.
    victim_latencies: List[float] = field(default_factory=list)
    p99_window: float = float("nan")
    goodput_window: float = 0.0
    #: Contention-weighted candidate scores by op (the audit
    #: scalarization of §3.5, summed over live tasks), from the node's
    #: most recent overload assessment.
    candidates: Dict[str, float] = field(default_factory=dict)
    #: Normalized contention per resource from the same assessment.
    blame: Dict[str, float] = field(default_factory=dict)
    #: Ops cancelled by the node's *local* pipeline this window.
    local_cancelled_ops: List[str] = field(default_factory=list)
    #: Tasks cancelled by coordinator directives this window.
    directive_cancels_window: int = 0
    #: Directives still pending delivery (node partitioned).
    directives_deferred: int = 0
    #: DAGOR feedback: highest op priority value the node admits.
    admit_priority: int = 99

    def to_dict(self) -> Dict[str, Any]:
        out = dict(self.__dict__)
        out["victim_latencies"] = list(self.victim_latencies)
        out["completions_by_op"] = dict(self.completions_by_op)
        out["candidates"] = {
            k: round(v, 9) for k, v in sorted(self.candidates.items())
        }
        out["blame"] = {
            k: round(v, 9) for k, v in sorted(self.blame.items())
        }
        return out


class ClusterNode:
    """One app node, advanced epoch by epoch."""

    def __init__(
        self, spec: FleetSpec, node_spec: NodeSpec, index: int
    ) -> None:
        self.spec = spec
        self.node_spec = node_spec
        self.index = index
        self.name = node_spec.name
        self.backend = node_spec.backend
        self.env = Environment()
        rng = Rng(spec.seed).fork(f"cluster:{self.name}")
        config = AtroposConfig(
            slo_latency=spec.slo_latency,
            cancellation_enabled=(spec.mode == "local"),
        )
        self.controller = Atropos(self.env, config)
        if node_spec.backend == "mysql":
            self.app = MySQL(
                self.env,
                self.controller,
                rng,
                MySQLConfig(
                    tables=spec.tables,
                    pages_per_light_op=spec.mysql_pages_per_light_op,
                    miss_penalty=spec.mysql_miss_penalty,
                ),
            )
        else:
            self.app = PostgreSQL(
                self.env,
                self.controller,
                rng,
                PostgresConfig(tables=spec.tables),
            )
        self._register_cluster_ops()
        self.controller.bind(self.app)
        if spec.mode != "none":
            self.controller.start()
        self.collector = MetricsCollector()
        self.driver = Driver(self.env, self.app, self.controller, self.collector)
        #: Reachability handle for the coordinator's failure model.
        self.dist_node = DistNode(self.name)
        #: Directives awaiting delivery (node was partitioned).
        self.pending_directives: List[Directive] = []
        #: Tasks cancelled through coordinator directives (total).
        self.directive_cancels = 0
        #: Ops those directive cancels targeted, in delivery order.
        self.directive_cancelled_ops: List[str] = []
        self._directive_seq = 0
        # Window bookkeeping for status diffs.
        self._record_idx = 0
        self._offered_last = 0
        self._cancel_log_idx = 0
        self._directive_cancels_last = 0

    # ------------------------------------------------------------------
    # Cluster-op alias handlers
    # ------------------------------------------------------------------
    def _register_cluster_ops(self) -> None:
        app = self.app
        spec = self.spec
        if self.backend == "mysql":

            def point(task, table=0):
                yield from app.point_select(task, table=table)

            def write(task, table=0):
                yield from app.row_update(task, table=table)

            def heavy_report(task):
                yield from app.report_query(
                    task,
                    pages=spec.report_pages,
                    duration=spec.report_duration,
                )

            def fanout_scan(task, rows=0.0):
                yield from app.scan(task, table=0, rows=rows)

        else:

            def point(task, table=0):
                yield from app.select(task, table=table)

            def write(task, table=0):
                yield from app.update(task, table=table)

            def heavy_report(task):
                yield from app.bulk_update(task, table=0, rows=spec.report_rows)

            def fanout_scan(task, rows=0.0):
                yield from app.vacuum(
                    task, total_bytes=rows * spec.pg_bytes_per_row
                )

        app.register_handler("point", point)
        app.register_handler("write", write)
        app.register_handler("heavy_report", heavy_report)
        app.register_handler("fanout_scan", fanout_scan)

    # ------------------------------------------------------------------
    # Epoch advance
    # ------------------------------------------------------------------
    def advance(
        self,
        epoch: int,
        t_end: float,
        arrivals: List[Arrival],
        directives: List[Directive],
    ) -> NodeStatus:
        """Run this node's environment to ``t_end`` and snapshot it."""
        self._apply_partition_schedule(self.env.now)
        if directives:
            self.pending_directives.extend(directives)
        if self.pending_directives and self.dist_node.reachable:
            due = self.pending_directives
            self.pending_directives = []
            for directive in due:
                self.env.process(self._apply_directive(directive))
        if arrivals:
            by_client: Dict[str, List] = {}
            for t, op, params, client in arrivals:
                by_client.setdefault(client, []).append(
                    (t, self._make_op(op, params))
                )
            for client, entries in by_client.items():
                self.driver.run_arrivals(entries, client_id=client)
        self.env.run(until=t_end)
        return self._status(epoch, t_end)

    def _make_op(self, op: str, params: Dict[str, Any]):
        def factory(op=op, params=params):
            return Operation(op, dict(params))

        return factory

    def _apply_partition_schedule(self, now: float) -> None:
        partitioned = any(
            node == self.name and start <= now < end
            for node, start, end in self.spec.partitions
        )
        if partitioned and not self.dist_node.partitioned:
            self.dist_node.partition()
        elif not partitioned and self.dist_node.partitioned:
            self.dist_node.heal()

    def _apply_directive(self, directive: Directive):
        """Process generator: deliver one cancel directive via TaskTree."""
        if directive.kind != CANCEL:
            return
        targets = [
            task
            for task in self.controller.live_tasks()
            if task.op_name == directive.op and task.cancellable
        ]
        if not targets:
            return
        self._directive_seq += 1
        root = CancellableTask(
            self.env,
            key=f"{self.name}:directive:{self._directive_seq}",
            op_name="cluster-directive",
            client_id="coordinator",
            cancellable=False,
        )
        tree = TaskTree(
            self.env, root, propagation_delay=self.spec.directive_delay
        )
        for task in targets:
            tree.add_child(task, self.dist_node)
        signal = CancelSignal(
            reason=f"cluster-directive:{directive.op}",
            decided_at=self.env.now,
        )
        deliveries = yield from tree.cancel_all(signal)
        self._count_directive_deliveries(deliveries, directive.op)
        if tree.undelivered():
            yield self.env.timeout(self.spec.directive_delay)
            retried = yield from tree.retry_undelivered(signal)
            self._count_directive_deliveries(retried, directive.op)

    def _count_directive_deliveries(self, deliveries, op: str) -> None:
        fresh = sum(1 for d in deliveries if d.delivered and not d.reason)
        self.directive_cancels += fresh
        self.directive_cancelled_ops.extend([op] * fresh)

    # ------------------------------------------------------------------
    # Status snapshot
    # ------------------------------------------------------------------
    def _status(self, epoch: int, t_end: float) -> NodeStatus:
        spec = self.spec
        records = self.collector.records
        window = records[self._record_idx:]
        self._record_idx = len(records)
        offered_total = self.collector.offered
        offered_window = offered_total - self._offered_last
        self._offered_last = offered_total
        status = NodeStatus(
            node=self.name,
            backend=self.backend,
            epoch=epoch,
            t=t_end,
            outstanding=self.driver.inflight,
            offered_window=offered_window,
        )
        window_len = max(spec.epoch, 1e-9)
        good = 0
        for record in window:
            if record.completed:
                status.completed_window += 1
                status.completions_by_op[record.op_name] = (
                    status.completions_by_op.get(record.op_name, 0) + 1
                )
                if record.op_name == "point":
                    status.victim_latencies.append(record.latency)
                if record.latency <= spec.slo_latency:
                    good += 1
            elif record.status.value == "cancelled":
                status.cancelled_window += 1
            else:
                status.dropped_window += 1
        status.goodput_window = good / window_len
        if status.victim_latencies:
            status.p99_window = percentile(status.victim_latencies, 99)
        self._fill_candidates(status)
        log = self.controller.cancellation.log
        status.local_cancelled_ops = [
            entry.op_name
            for entry in log[self._cancel_log_idx:]
            if getattr(entry, "delivered", True)
        ]
        self._cancel_log_idx = len(log)
        status.directive_cancels_window = (
            self.directive_cancels - self._directive_cancels_last
        )
        self._directive_cancels_last = self.directive_cancels
        status.directives_deferred = len(self.pending_directives)
        status.admit_priority = self._admit_priority(status)
        return status

    def _fill_candidates(self, status: NodeStatus) -> None:
        """Report the audit scalarization of the latest assessment.

        Only live tasks count (a finished culprit frees nothing), and
        only while the node still sees meaningful contention -- a stale
        assessment from a recovered node must not keep accusing ops.
        """
        assessment = self.controller.last_assessment
        if assessment is None:
            return
        threshold = self.controller.config.contention_threshold
        blame = assessment.blame_scores()
        if max(blame.values(), default=0.0) < 0.5 * threshold:
            return
        status.blame = dict(blame)
        weights = {
            r.resource: r.contention_norm for r in assessment.resources
        }
        for report in assessment.tasks:
            task = report.task
            if not task.alive:
                continue
            score = sum(
                weights.get(resource, 0.0) * gain
                for resource, gain in report.gains.items()
            )
            if score > 0.0:
                status.candidates[task.op_name] = (
                    status.candidates.get(task.op_name, 0.0) + score
                )

    def _admit_priority(self, status: NodeStatus) -> int:
        """DAGOR feedback: tighten admission as the window p99 degrades."""
        spec = self.spec
        p99 = status.p99_window
        if p99 != p99:  # no victim completions: stay open
            return 99
        if p99 > 2.0 * spec.slo_latency:
            return 1  # only point + write
        if p99 > spec.slo_latency * spec.slo_slack:
            return 2  # shed fanout_scan
        return 99

    # ------------------------------------------------------------------
    # Final report
    # ------------------------------------------------------------------
    def finish(self) -> Dict[str, Any]:
        """Per-node end-of-run report (picklable)."""
        from ..sim.metrics import Summary

        spec = self.spec
        effective = spec.duration - spec.warmup
        summary = Summary.from_collector(
            self.collector.trimmed(spec.warmup), effective
        )
        log = self.controller.cancellation.log
        return {
            "node": self.name,
            "backend": self.backend,
            "throughput": summary.throughput,
            "p99_latency": summary.p99_latency,
            "completed": summary.completed,
            "cancelled": summary.cancelled,
            "dropped": summary.dropped,
            "local_cancels": int(self.controller.cancels_issued),
            "local_cancelled_ops": [
                entry.op_name
                for entry in log
                if getattr(entry, "delivered", True)
            ],
            "directive_cancels": int(self.directive_cancels),
            "directive_cancelled_ops": list(self.directive_cancelled_ops),
            "regular_overloads": int(self.controller.regular_overloads),
        }
