"""Pluggable load-balancer routing policies.

Policies choose a node index for each arrival from a list of
:class:`NodeView` snapshots (the LB's *estimate* of node state -- its
own outstanding counters corrected by the per-epoch status feedback, not
ground truth, exactly like a real LB).  All randomness draws from the
balancer's forked rng, so routing is deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Type

from .directives import priority_of

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.rng import Rng


@dataclass
class NodeView:
    """The LB's per-node state estimate at routing time."""

    index: int
    name: str
    #: Assigned-minus-reported-finished request estimate.
    outstanding: int = 0
    #: DAGOR upstream feedback: highest op priority value the node is
    #: currently willing to admit (see NodeStatus.admit_priority).
    admit_priority: int = 99


class RoutingPolicy:
    """Base class: choose a node index for one arrival (None = shed)."""

    name = "routing"

    def choose(
        self, op: str, views: List[NodeView], rng: "Rng"
    ) -> Optional[int]:  # pragma: no cover - abstract
        raise NotImplementedError


class RoundRobin(RoutingPolicy):
    """Cycle through nodes in order, ignoring load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, op, views, rng):
        view = views[self._cursor % len(views)]
        self._cursor += 1
        return view.index


class LeastOutstanding(RoutingPolicy):
    """Send to the node with the fewest outstanding requests."""

    name = "least-outstanding"

    def choose(self, op, views, rng):
        best = min(views, key=lambda v: (v.outstanding, v.index))
        return best.index


class PowerOfTwoChoices(RoutingPolicy):
    """Sample two distinct nodes, pick the less loaded (classic p2c)."""

    name = "p2c"

    def choose(self, op, views, rng):
        if len(views) == 1:
            return views[0].index
        first, second = rng.sample(views, 2)
        best = min((first, second), key=lambda v: (v.outstanding, v.index))
        return best.index


class DagorAdmission(RoutingPolicy):
    """DAGOR-style priority admission with upstream feedback.

    Each node reports the highest priority value it still admits
    (tightened when its window p99 breaches the SLO); the LB sheds
    arrivals no node will admit and routes the rest to the least-loaded
    admitting node.  Overload feedback thus flows through the
    admission/routing tier (arxiv 1806.04075) instead of piling retries
    onto a saturated replica.
    """

    name = "dagor"

    def choose(self, op, views, rng):
        priority = priority_of(op)
        admitting = [v for v in views if priority <= v.admit_priority]
        if not admitting:
            return None  # shed at the LB
        best = min(admitting, key=lambda v: (v.outstanding, v.index))
        return best.index


_POLICIES: Dict[str, Type[RoutingPolicy]] = {
    cls.name: cls
    for cls in (RoundRobin, LeastOutstanding, PowerOfTwoChoices, DagorAdmission)
}


def make_policy(name: str) -> RoutingPolicy:
    """Instantiate a routing policy by name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None


def policy_names() -> List[str]:
    return sorted(_POLICIES)
