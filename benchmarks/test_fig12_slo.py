"""Benchmark regenerating Figure 12: SLO maintenance under different thresholds."""

from repro.experiments import ALL_EXPERIMENTS

from conftest import run_experiment


def test_fig12(benchmark):
    result = run_experiment(benchmark, ALL_EXPERIMENTS["fig12"])
    assert result.tables
