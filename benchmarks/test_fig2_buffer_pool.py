"""Benchmark regenerating Figure 2: dump queries vs buffer pool contention."""

from repro.experiments import ALL_EXPERIMENTS

from conftest import run_experiment


def test_fig2(benchmark):
    result = run_experiment(benchmark, ALL_EXPERIMENTS["fig2"])
    assert result.tables
