"""Benchmark regenerating Figure 13: cancellation-policy ablation.

Paper headline: the multi-objective policy is at least as good as the
greedy heuristic and the current-usage variant, and strictly better on
multi-resource / long-task cases.
"""

from repro.experiments import ALL_EXPERIMENTS

from conftest import run_experiment


def test_fig13(benchmark):
    result = run_experiment(benchmark, ALL_EXPERIMENTS["fig13"])
    summary = result.table("summary").row_map()
    moo_tput = summary["Multi-Objective"][1]
    assert moo_tput > 0.9
    for other in ("Heuristic", "Current Usage"):
        assert moo_tput >= summary[other][1] - 0.05, other
    # The late-culprit scenario exposes the current-usage failure mode:
    # it cancels the nearly-done report instead of the fresh dump.
    late = result.table("late-culprit").row_map()
    assert late["Multi-Objective"][3] == "dump"
    assert late["Current Usage"][3] == "report_query"
    assert late["Current Usage"][2] > late["Multi-Objective"][2]
