"""Benchmark regenerating Figure 4: Protego vs pBox vs Atropos."""

from repro.experiments import ALL_EXPERIMENTS

from conftest import run_experiment


def test_fig4(benchmark):
    result = run_experiment(benchmark, ALL_EXPERIMENTS["fig4"])
    assert result.tables
