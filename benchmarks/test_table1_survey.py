"""Benchmark regenerating Table 1: the cancellation-support survey."""

from repro.experiments import ALL_EXPERIMENTS

from conftest import run_experiment


def test_table1(benchmark):
    result = run_experiment(benchmark, ALL_EXPERIMENTS["table1"])
    text = result.format()
    assert "151" in text and "76%" in text
