"""Benchmark regenerating Figure 10: mitigation across the 16 cases.

Paper headline: Atropos sustains 96% of baseline throughput, bounds p99
to 1.16x on average, and drops fewer than 0.01% of requests.
"""

from repro.experiments import ALL_EXPERIMENTS

from conftest import run_experiment


def test_fig10(benchmark):
    result = run_experiment(benchmark, ALL_EXPERIMENTS["fig10"])
    summary = {row[0]: row[1] for row in result.table("summary").rows}
    assert summary["avg_norm_throughput"] > 0.9
    assert summary["avg_drop_rate"] < 0.01
    # Atropos beats the uncontrolled run on p99 in every case.
    for row in result.table("10b").rows:
        case, overload, atropos = row
        assert atropos < overload, case
