"""Benchmarks for the design-choice ablations (DESIGN.md §6).

These quantify trade-offs the paper discusses in prose: the cancellation
cooldown (§5.3), the detection period (§3.3), and the re-execution
fairness path (§4).
"""

from repro.experiments import ablations

from conftest import run_experiment


def test_ablation_cooldown(benchmark):
    result = run_experiment(benchmark, ablations.run_cooldown)
    p99 = result.table("p99")
    # Slower cancellation (longer cooldown) must not *improve* the tail:
    # the fastest setting is at least as good as the slowest on average.
    fastest = p99.column(p99.columns[1])
    slowest = p99.column(p99.columns[-1])
    assert sum(fastest) <= sum(slowest) * 1.2


def test_ablation_detection_period(benchmark):
    result = run_experiment(benchmark, ablations.run_detection_period)
    assert result.tables[0].rows


def test_ablation_reexecution(benchmark):
    result = run_experiment(benchmark, ablations.run_no_reexecution)
    table = result.tables[0]
    # Without re-execution, every cancellation is a loss: the drop rate
    # is at least as high in every case.
    for case, with_reexec, without in table.rows:
        assert without >= with_reexec - 1e-9, case
