"""Benchmark regenerating Figure 9: Atropos vs Protego/pBox/DARC/PARTIES.

Paper headline (§5.2): Atropos averages 96% normalized throughput and
1.16x normalized p99; Protego/pBox/DARC/PARTIES average 50.7%, 53.9%,
36.3%, 37.8% throughput respectively.  We assert the ordering, not the
absolute numbers.
"""

from repro.experiments import ALL_EXPERIMENTS

from conftest import run_experiment


def test_fig9(benchmark):
    result = run_experiment(benchmark, ALL_EXPERIMENTS["fig9"])
    summary = result.table("summary").row_map()
    atropos_tput = summary["atropos"][1]
    assert atropos_tput > 0.9
    for system in ("protego", "pbox", "darc", "parties"):
        assert atropos_tput >= summary[system][1], system
    # p99: Atropos beats the isolation/scheduling systems outright.
    # Protego can match or edge it on raw p99 -- but only by shedding
    # ~20% of all requests (Fig 11's comparison), so it is excluded here.
    atropos_p99 = summary["atropos"][2]
    for system in ("pbox", "darc", "parties"):
        assert atropos_p99 <= summary[system][2], system
