"""Benchmark regenerating Figure 3: table-lock contention."""

from repro.experiments import ALL_EXPERIMENTS

from conftest import run_experiment


def test_fig3(benchmark):
    result = run_experiment(benchmark, ALL_EXPERIMENTS["fig3"])
    assert result.tables
