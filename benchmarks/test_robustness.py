"""Benchmark: multi-seed robustness of the headline mitigation result."""

from repro.experiments import robustness

from conftest import run_experiment


def test_robustness(benchmark):
    result = run_experiment(benchmark, robustness.run)
    table = result.tables[0]
    cols = table.columns
    for row in table.rows:
        case = row[0]
        # Throughput restored at every seed.
        assert row[cols.index("tput_min")] > 0.85, case
        # Drops stay small at every seed.
        assert row[cols.index("drop_max")] < 0.03, case
