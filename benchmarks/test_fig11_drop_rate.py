"""Benchmark regenerating Figure 11: drop rate, Atropos vs Protego.

Paper headline: Atropos drops < 0.01% of requests; Protego averages ~25%.
"""

from repro.experiments import ALL_EXPERIMENTS

from conftest import run_experiment


def test_fig11(benchmark):
    result = run_experiment(benchmark, ALL_EXPERIMENTS["fig11"])
    summary = result.table("summary").row_map()
    assert summary["Protego"][1] > summary["Atropos"][1] * 10
    assert summary["Atropos"][1] < 0.01
