"""Benchmark: campaign dispatch overhead per run.

The campaign layer wraps every simulation in spec hashing, cache lookup,
payload serialization, and a store write.  That bookkeeping must stay a
small fraction of the simulation wall-clock itself -- otherwise caching
and parallelism would be paid for twice over.

Runs outside pytest-benchmark on purpose: the quantity of interest is
the *difference* between campaign elapsed time and in-run simulation
time, which pedantic rounds cannot express.
"""

import time

from repro.campaign import execute, reset_session_stats, session_stats
from repro.campaign.spec import RunSpec


def _specs(n, duration=2.0):
    # Distinct seeds -> distinct cache keys -> every spec executes.
    return [
        RunSpec(
            "bench",
            "case",
            {"case_id": "c1", "include_culprit": False},
            seed=seed,
            duration=duration,
            warmup=0.5,
        )
        for seed in range(n)
    ]


def test_dispatch_overhead_is_small_fraction_of_simulation(tmp_path):
    n = 8
    reset_session_stats()
    started = time.perf_counter()
    outcomes = execute(_specs(n), jobs=1, cache_dir=tmp_path / "cache")
    elapsed = time.perf_counter() - started

    sim_time = sum(o.walltime for o in outcomes)
    overhead = elapsed - sim_time
    per_run = overhead / n
    mean_sim = sim_time / n
    print(
        f"\n[campaign-overhead] runs={n} sim={sim_time:.3f}s "
        f"elapsed={elapsed:.3f}s overhead/run={per_run * 1000:.2f}ms "
        f"({per_run / mean_sim:.1%} of mean sim walltime)"
    )
    assert session_stats().misses == n
    # Hashing + store writes around each run must stay well under the
    # run itself (generous bound: 25% of the mean simulation time).
    assert per_run < 0.25 * mean_sim


def test_warm_cache_replay_is_nearly_free(tmp_path):
    n = 8
    cache_dir = tmp_path / "cache"
    cold_started = time.perf_counter()
    execute(_specs(n), jobs=1, cache_dir=cache_dir)
    cold = time.perf_counter() - cold_started

    reset_session_stats()
    warm_started = time.perf_counter()
    execute(_specs(n), jobs=1, cache_dir=cache_dir)
    warm = time.perf_counter() - warm_started

    print(
        f"\n[campaign-overhead] cold={cold:.3f}s warm={warm:.3f}s "
        f"({warm / cold:.1%})"
    )
    assert session_stats().hit_rate == 1.0
    # The acceptance bar is <10% of cold wall-clock; assert half that.
    assert warm < 0.05 * cold
