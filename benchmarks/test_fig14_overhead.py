"""Benchmark regenerating Figure 14: tracing/decision overhead.

Paper headline: <= 1.95% throughput overhead under normal load (0.59%
average); ~7-8% under overload with fine-grained tracing enabled.
"""

from repro.experiments import ALL_EXPERIMENTS

from conftest import run_experiment


def test_fig14(benchmark):
    result = run_experiment(benchmark, ALL_EXPERIMENTS["fig14"])
    tput = result.table("14a")
    cols = tput.columns
    for row in tput.rows:
        app = row[0]
        # Normal-load overhead is small.
        assert row[cols.index("Read")] > 0.9, app
        assert row[cols.index("Write")] > 0.9, app
