"""Benchmark regenerating Table 2: the 16 reproduced overload cases."""

from repro.experiments import ALL_EXPERIMENTS

from conftest import run_experiment


def test_table2(benchmark):
    result = run_experiment(benchmark, ALL_EXPERIMENTS["table2"])
    assert len(result.tables[0].rows) == 16
