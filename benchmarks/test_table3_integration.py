"""Benchmark regenerating Table 3: per-application integration effort."""

from repro.experiments import ALL_EXPERIMENTS

from conftest import run_experiment


def test_table3(benchmark):
    result = run_experiment(benchmark, ALL_EXPERIMENTS["table3"])
    assert len(result.tables[0].rows) == 6
