"""Benchmark guarding the telemetry fast path.

Telemetry is pull-based: when no session is active (or a session stops
accepting runs), the harness pays one active-session lookup and one
branch -- the ``NullTracer`` discipline.  This bench pins that promise
with a *deterministic* overhead measure: the number of Python function
calls executed by the run.  Wall clock on shared CI hardware jitters by
double-digit percent; call counts for a fixed seed do not, and any code
sneaking work into the disabled path shows up in them immediately.
"""

import sys
import time

from repro.apps.mysql import MySQL, light_mix
from repro.telemetry import TelemetrySession, telemetry_session
from repro.workloads import OpenLoopSource, Workload

DURATION = 5.0


def _run_once(seed=0):
    from repro.experiments import run_simulation

    return run_simulation(
        lambda env, ctl, rng: MySQL(env, ctl, rng),
        lambda app, rng: Workload(
            [OpenLoopSource(rate=200.0, mix=light_mix(rng))]
        ),
        duration=DURATION,
        seed=seed,
    )


def _count_calls(fn):
    """(function calls, wall seconds) for one invocation of ``fn``."""
    calls = 0

    def profiler(frame, event, arg):
        nonlocal calls
        if event in ("call", "c_call"):
            calls += 1

    started = time.perf_counter()
    sys.setprofile(profiler)
    try:
        fn()
    finally:
        sys.setprofile(None)
    return calls, time.perf_counter() - started


def _measure():
    _run_once()  # warm imports / code caches outside the measurements

    # A session that accepts no more runs: the harness sees
    # enabled=True, accepting_runs=False and attaches nothing.
    saturated = TelemetrySession(interval=0.25, max_runs=0)

    def run_saturated():
        with telemetry_session(saturated):
            _run_once()

    def run_scraped():
        session = TelemetrySession(interval=0.25)
        with telemetry_session(session):
            _run_once()

    plain_calls, plain_s = _count_calls(_run_once)
    disabled_calls, disabled_s = _count_calls(run_saturated)
    scraped_calls, scraped_s = _count_calls(run_scraped)
    return {
        "plain_calls": plain_calls,
        "plain_s": plain_s,
        "disabled_calls": disabled_calls,
        "disabled_s": disabled_s,
        "scraped_calls": scraped_calls,
        "scraped_s": scraped_s,
        "disabled_overhead": disabled_calls / plain_calls - 1.0,
        "scraping_overhead": scraped_calls / plain_calls - 1.0,
    }


def test_telemetry_overhead(benchmark):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(
        f"plain {result['plain_calls']} calls "
        f"({result['plain_s'] * 1000:.0f}ms)  "
        f"disabled-path {result['disabled_calls']} calls "
        f"({result['disabled_overhead'] * 100:+.3f}%)  "
        f"scraped {result['scraped_calls']} calls "
        f"({result['scraping_overhead'] * 100:+.3f}%)"
    )
    # The paper's own bar for always-on instrumentation (Fig 14) is
    # <2% under normal load; the *disabled* telemetry path must clear
    # it with room to spare (it should be ~0: one session lookup and
    # one property check per run).
    assert result["disabled_overhead"] < 0.02
    # Active scraping reads state, it never re-simulates: bounded well
    # below the cost of the run itself even at the 0.25s interval.
    assert result["scraping_overhead"] < 0.25
