"""Benchmark harness configuration.

Each benchmark regenerates one paper artifact (figure or table) exactly
once per session (``pedantic`` with a single round -- these are
minutes-long simulations, not microbenchmarks) and prints the resulting
rows/series so the bench log doubles as the reproduction record.
"""

import pytest


def run_experiment(benchmark, runner, **kwargs):
    """Run one experiment under pytest-benchmark and print its tables."""
    result = benchmark.pedantic(
        lambda: runner(quick=True, **kwargs), rounds=1, iterations=1
    )
    print()
    print(result.format())
    return result
